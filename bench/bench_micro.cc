// Microbenchmarks (google-benchmark) for the hot paths of the simulation
// substrate: disk-model evaluation, the max-min-fair solver, event-queue
// throughput, Paxos commit throughput and fabric routing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "consensus/paxos.h"
#include "core/cluster.h"
#include "fabric/bandwidth.h"
#include "fabric/builders.h"
#include "hw/disk_model.h"
#include "hw/disk_soa.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace {

using namespace ustore;

void BM_DiskModelEvaluate(benchmark::State& state) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::WorkloadSpec spec{KiB(4), 0.5, hw::AccessPattern::kRandom};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(spec));
  }
}
BENCHMARK(BM_DiskModelEvaluate);

void BM_DiskModelServiceTime(benchmark::State& state) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::IoRequest request{MiB(4), hw::IoDirection::kWrite,
                        hw::AccessPattern::kRandom};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ServiceTime(request, hw::IoDirection::kRead));
  }
}
BENCHMARK(BM_DiskModelServiceTime);

void BM_MaxMinFairSolver(benchmark::State& state) {
  const int disks = static_cast<int>(state.range(0));
  fabric::BuiltFabric f = fabric::BuildSingleHostTree({.disks = disks});
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::WorkloadSpec spec{KiB(4), 1.0, hw::AccessPattern::kSequential};
  std::vector<fabric::FlowDemand> demands;
  for (int i = 0; i < disks; ++i) {
    demands.push_back(fabric::FlowDemand{
        f.disks[i], model.Evaluate(spec).bytes_per_sec, 1.0, KiB(4)});
  }
  fabric::BandwidthSolver solver(&f, hw::UsbHostControllerParams{},
                                 hw::UsbLinkParams{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(demands));
  }
}
BENCHMARK(BM_MaxMinFairSolver)->Arg(4)->Arg(12)->Arg(48);

void BM_MaxMinFairSolverPrototype(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  fabric::BuiltFabric f = fabric::BuildPrototypeFabric({.groups = groups});
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::WorkloadSpec spec{KiB(64), 0.5, hw::AccessPattern::kSequential};
  std::vector<fabric::FlowDemand> demands;
  for (fabric::NodeIndex disk : f.disks) {
    demands.push_back(fabric::FlowDemand{
        disk, model.Evaluate(spec).bytes_per_sec, 0.5, KiB(64)});
  }
  fabric::BandwidthSolver solver(&f, hw::UsbHostControllerParams{},
                                 hw::UsbLinkParams{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(demands));
  }
}
BENCHMARK(BM_MaxMinFairSolverPrototype)->Arg(4)->Arg(16);

void BM_MaxMinFairSolverColdStart(benchmark::State& state) {
  // The one-shot wrapper: paths re-resolved and the sparse constraint
  // structure rebuilt on every call (no cross-call caching).
  const int disks = static_cast<int>(state.range(0));
  fabric::BuiltFabric f = fabric::BuildSingleHostTree({.disks = disks});
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::WorkloadSpec spec{KiB(4), 1.0, hw::AccessPattern::kSequential};
  std::vector<fabric::FlowDemand> demands;
  for (int i = 0; i < disks; ++i) {
    demands.push_back(fabric::FlowDemand{
        f.disks[i], model.Evaluate(spec).bytes_per_sec, 1.0, KiB(4)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric::SolveMaxMinFair(
        f, demands, hw::UsbHostControllerParams{}, hw::UsbLinkParams{}));
  }
}
BENCHMARK(BM_MaxMinFairSolverColdStart)->Arg(48);

void BM_MaxMinFairSolverSwitchChurn(benchmark::State& state) {
  // Worst case for the caches: a switch flips between solves, so every
  // solve re-resolves paths and rebuilds the constraint structure.
  fabric::BuiltFabric f = fabric::BuildPrototypeFabric({.groups = 4});
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::WorkloadSpec spec{KiB(64), 0.5, hw::AccessPattern::kSequential};
  std::vector<fabric::FlowDemand> demands;
  for (fabric::NodeIndex disk : f.disks) {
    demands.push_back(fabric::FlowDemand{
        disk, model.Evaluate(spec).bytes_per_sec, 0.5, KiB(64)});
  }
  fabric::BandwidthSolver solver(&f, hw::UsbHostControllerParams{},
                                 hw::UsbLinkParams{});
  bool select = false;
  for (auto _ : state) {
    f.topology.SetSwitch(f.switches[0], select);
    select = !select;
    benchmark::DoNotOptimize(solver.Solve(demands));
  }
}
BENCHMARK(BM_MaxMinFairSolverSwitchChurn);

void BM_SoaSubmitPerDisk(benchmark::State& state) {
  // Steady-state drain over a whole unit, one SubmitBatch/FinishDrain pair
  // per disk per sweep — the pre-vectorization sharded path. Each disk pays
  // its own DiskModel evaluation.
  const int disks = static_cast<int>(state.range(0));
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::DiskStateArray soa(&model, disks, /*idle_timeout=*/0);
  const hw::IoRequest shape{KiB(512), hw::IoDirection::kRead,
                            hw::AccessPattern::kSequential};
  sim::Time now = 0;
  for (auto _ : state) {
    sim::Time last = 0;
    for (int d = 0; d < disks; ++d) {
      const auto out = soa.SubmitBatch(d, shape, 8, now);
      last = std::max(last, out.last_completion);
      soa.FinishDrain(d, out.last_completion);
    }
    now = last;
  }
  state.SetItemsProcessed(state.iterations() * disks);
}
BENCHMARK(BM_SoaSubmitPerDisk)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SoaSubmitRange(benchmark::State& state) {
  // The same steady-state drain through the vectorized range entry points
  // (SubmitBatchRange + FinishDrainRange): one pass over the SoA arrays
  // with the model evaluation hoisted to three calls per sweep. The
  // per-disk completion schedules are bit-identical to BM_SoaSubmitPerDisk
  // (sharded_unit_test.RangeEntryPointsMatchPerDiskLoop).
  const int disks = static_cast<int>(state.range(0));
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::DiskStateArray soa(&model, disks, /*idle_timeout=*/0);
  const hw::IoRequest shape{KiB(512), hw::IoDirection::kRead,
                            hw::AccessPattern::kSequential};
  sim::Time now = 0;
  for (auto _ : state) {
    const auto out = soa.SubmitBatchRange(0, disks, shape, 8, now);
    soa.FinishDrainRange(0, disks, out.last_completion);
    now = out.last_completion;
  }
  state.SetItemsProcessed(state.iterations() * disks);
}
BENCHMARK(BM_SoaSubmitRange)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(sim::Micros(i * 7 % 997), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueue);

void BM_EventQueueChurn(benchmark::State& state) {
  // Steady-state Schedule/Cancel/Step churn over a queue that never drains —
  // the control-plane pattern (timeouts armed, then cancelled on completion).
  // The captured payload mirrors a network-delivery closure (too big for
  // std::function's inline buffer).
  sim::Simulator sim;
  struct Payload {
    std::uint64_t src = 1, dst = 2, bytes = 4096;
  };
  constexpr int kBacklog = 1024;
  std::vector<sim::EventId> ids(kBacklog);
  std::uint64_t fired = 0;
  Payload p;
  for (int i = 0; i < kBacklog; ++i) {
    ids[i] = sim.Schedule(sim::Micros(100 + i),
                          [&fired, p] { fired += p.bytes; });
  }
  int slot = 0;
  for (auto _ : state) {
    sim.Cancel(ids[slot]);
    ids[slot] = sim.Schedule(sim::Micros(100 + slot),
                             [&fired, p] { fired += p.bytes; });
    slot = (slot + 1) % kBacklog;
    sim.Step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueChurn);

void BM_TimerRearm(benchmark::State& state) {
  // Heartbeat/timeout restart pattern: a Timer repeatedly re-armed before it
  // fires. Each batch restarts the timer 1024 times, then drains.
  sim::Simulator sim;
  sim::Timer timer(&sim);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      timer.StartOneShot(sim::Seconds(1), [&fired] { ++fired; });
    }
    sim.Run();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TimerRearm);

void BM_TimerPeriodicFire(benchmark::State& state) {
  // Steady-state periodic firing — heartbeats, report ticks, idle-disk
  // clocks. Each iteration drives the timer through 1024 periods. The
  // RearmCurrent fast path makes this closure-construction-free: every
  // firing re-queues its own EventFn storage, which the rearm_hits
  // counter proves (one hit per firing, or the run is flagged).
  sim::Simulator sim;
  sim::Timer timer(&sim);
  std::uint64_t fired = 0;
  timer.StartPeriodic(sim::Millis(1), [&fired] { ++fired; });
  for (auto _ : state) {
    sim.Run(1024);
  }
  timer.Stop();
  if (sim.rearm_hits() != sim.events_processed()) {
    state.SkipWithError("periodic firings constructed fresh closures");
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TimerPeriodicFire);

void BM_ActivePathResolution(benchmark::State& state) {
  // Path walks on an unchanged topology — what the bandwidth solver and
  // FabricManager attachment recompute do between fabric mutations.
  fabric::BuiltFabric f = fabric::BuildPrototypeFabric({.groups = 8});
  for (auto _ : state) {
    for (fabric::NodeIndex disk : f.disks) {
      benchmark::DoNotOptimize(f.topology.ActivePath(disk));
    }
  }
}
BENCHMARK(BM_ActivePathResolution);

void BM_FabricRouteTo(benchmark::State& state) {
  fabric::BuiltFabric f = fabric::BuildPrototypeFabric({.groups = 8});
  for (auto _ : state) {
    for (fabric::NodeIndex disk : f.disks) {
      benchmark::DoNotOptimize(
          f.topology.RouteTo(disk, f.host_ports[2]));
    }
  }
}
BENCHMARK(BM_FabricRouteTo);

void BM_MasterHeartbeat(benchmark::State& state) {
  // Full-heartbeat handling cost as a function of StorAlloc size. With the
  // disk->allocation reverse indexes this must be flat: processing a beat
  // touches only the listed disks, never the allocation table, so the
  // Arg(1000) run stays within ~2x of Arg(10) (setup noise, not scans).
  const int allocs = static_cast<int>(state.range(0));
  core::ClusterOptions options;
  options.seed = 99;
  core::Cluster cluster(options);
  cluster.Start();
  core::Master* master = cluster.active_master();
  net::RpcEndpoint admin(&cluster.sim(), &cluster.network(), "bench-admin");
  int created = 0;
  for (int i = 0; i < allocs; ++i) {
    auto request = std::make_shared<core::AllocateRequest>();
    request->service = "bench-svc";
    request->size = MiB(1);
    request->client = admin.id();
    request->disk_hint = "disk-" + std::to_string(i % 16);
    admin.Call(master->id(), request, sim::Seconds(60),
               [&created](Result<net::MessagePtr> result) {
                 if (result.ok()) ++created;
               });
    if (i % 32 == 31) cluster.RunFor(sim::Seconds(2));
  }
  cluster.RunFor(sim::Seconds(30));
  if (created != allocs) {
    state.SkipWithError("allocation setup failed");
    return;
  }

  // A synthetic full heartbeat from host 0 listing its four disks — the
  // same shape every EndPoint sends each full-beat period.
  auto heartbeat = std::make_shared<core::HeartbeatMsg>();
  heartbeat->host_index = 0;
  heartbeat->host = cluster.endpoint(0)->id();
  heartbeat->full = true;
  for (int d = 0; d < 4; ++d) {
    core::DiskStatusEntry entry;
    entry.name = "disk-" + std::to_string(d);
    entry.recognized = true;
    heartbeat->disks.push_back(entry);
  }
  for (auto _ : state) {
    admin.Notify(master->id(), heartbeat);
    cluster.RunFor(sim::MillisD(1));
  }
  benchmark::DoNotOptimize(master->allocation_count());
}
BENCHMARK(BM_MasterHeartbeat)->Arg(10)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_PaxosCommitThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network network(&sim, Rng(1));
    consensus::PaxosConfig config;
    config.peers = {"p0", "p1", "p2"};
    Rng rng(2);
    int applied = 0;
    std::vector<std::unique_ptr<consensus::PaxosNode>> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_unique<consensus::PaxosNode>(
          &sim, &network, config, i,
          [&applied](std::uint64_t, const std::string&) { ++applied; },
          rng.Fork()));
    }
    sim.RunFor(sim::Seconds(3));
    consensus::PaxosNode* leader = nullptr;
    for (auto& node : nodes) {
      if (node->is_leader()) leader = node.get();
    }
    if (leader != nullptr) {
      for (int i = 0; i < 100; ++i) {
        leader->Propose("command-" + std::to_string(i),
                        [](Result<std::uint64_t>) {});
      }
    }
    sim.RunFor(sim::Seconds(5));
    benchmark::DoNotOptimize(applied);
  }
}
BENCHMARK(BM_PaxosCommitThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
