// Reproduces Table I (§VI): estimated CapEx / AttEx of five storage
// solutions at 10 PB raw capacity.
#include <cstdio>

#include "bench_util.h"
#include "cost/cost_model.h"

int main() {
  using namespace ustore;
  bench::PrintHeader(
      "Table I: price of storage solutions @ 10 PB (thousands of dollars)");

  struct PaperRow {
    const char* system;
    double capex;
    double attex;  // <0 = not reported
  };
  const PaperRow paper[] = {
      {"DELL PowerVault MD3260i", 3340, 1525},
      {"Sun StorageTek SL150", 1748, -1},
      {"Pergamum", 756, 415},
      {"BACKBLAZE", 598, 257},
      {"UStore", 456, 115},
  };

  bench::PrintRow({"System", "Media", "CapEx $k (vs paper)",
                   "AttEx $k (vs paper)"},
                  26);
  auto table = cost::TableOne();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& row = table[i];
    std::string capex = bench::VsPaper(row.total / 1000.0, paper[i].capex, 0);
    std::string attex =
        paper[i].attex < 0
            ? "-"
            : bench::VsPaper(row.attach_cost / 1000.0, paper[i].attex, 0);
    bench::PrintRow({row.system, row.media, capex, attex}, 26);
  }

  auto ustore_cost = cost::UStoreCost(PB(10));
  auto backblaze = cost::BackblazeCost(PB(10));
  std::printf(
      "\nUStore vs BACKBLAZE: CapEx %.0f%% lower (paper: 24%%), "
      "AttEx %.0f%% lower (paper: 55%%)\n",
      100.0 * (1.0 - ustore_cost.total / backblaze.total),
      100.0 * (1.0 - ustore_cost.attach_cost / backblaze.attach_cost));
  std::printf("UStore units: %.1f x 64-disk 4U deploy units\n",
              ustore_cost.units);
  return 0;
}
