// Reproduces Table IV (§VII-C): power of one 4-port hub as a function of
// the number of disks connected, cross-checked against the FabricManager's
// live accounting.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "fabric/fabric_manager.h"
#include "power/power_model.h"
#include "sim/simulator.h"

int main() {
  using namespace ustore;
  bench::PrintHeader("Table IV: hub power vs connected disks (watts)");
  bench::PrintRow({"Disks", "Model (vs paper)"}, 16);
  const double paper[] = {0.21, 1.06, 1.23, 1.47, 1.67};
  power::ComponentPower components;
  for (int disks = 0; disks <= 4; ++disks) {
    bench::PrintRow({std::to_string(disks),
                     bench::VsPaper(power::HubPower(components, disks),
                                    paper[disks], 2)},
                    16);
  }

  // Live fabric cross-check: power off disks of leaf hub 0 one at a time
  // and watch the whole-fabric draw decrease.
  sim::Simulator sim;
  fabric::FabricManager manager(&sim, fabric::BuildPrototypeFabric(),
                                fabric::FabricManager::Options{}, Rng(5));
  sim.RunFor(sim::Seconds(8));
  std::printf("\nLive fabric power while cutting leafhub-0's disks:\n");
  std::printf("  all on: %.2f W\n", manager.FabricPower());
  for (int d = 0; d < 4; ++d) {
    auto disk = manager.topology().Find("disk-" + std::to_string(d));
    manager.DriveDiskPower(0, *disk, false);
    sim.RunFor(sim::Seconds(1));
    std::printf("  %d disk(s) off: %.2f W\n", d + 1,
                manager.FabricPower());
  }
  return 0;
}
