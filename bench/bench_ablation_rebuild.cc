// Ablation A4 (§IV-E future work): fabric-assisted rebuild.
//
// A replica volume on host 1 is copied onto a replacement volume on host 2
// (1.25 GiB here — 320 x 4 MiB blocks) by an agent process running on
// host 2's machine:
//   * baseline — the source stays on host 1: every block crosses the GbE
//     network from host 1 to the agent;
//   * colocated — the fabric first switches the source's disk group to
//     host 2, so both legs of the copy are machine-local.
// Reported: duration, copy throughput, and bytes the data-center network
// actually carried.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/cluster.h"
#include "services/rebuild.h"

namespace {

using namespace ustore;

constexpr int kBlocks = 320;  // 1.25 GiB

struct RunResult {
  services::RebuildReport report;
  Bytes network_bytes = 0;
};

RunResult Run(bool colocate, std::uint64_t seed) {
  core::ClusterOptions options;
  options.seed = seed;
  core::Cluster cluster(options);
  cluster.Start();

  // Replica source near host 1, replacement target near host 2.
  auto source_owner = cluster.MakeClient("rebuild-source-owner", 1);
  auto agent_client = cluster.MakeClient("rebuild-agent", 2);
  // The agent process runs on host 2's machine: model the loopback.
  net::LinkParams local;
  local.latency = sim::MicrosD(5);
  local.bandwidth = MBps(4000);
  cluster.network().SetLink("rebuild-agent", "host-2", local);

  core::ClientLib::Volume* source = nullptr;
  core::ClientLib::Volume* target = nullptr;
  source_owner->AllocateAndMount("rebuild-svc", GiB(4),
                                 [&](Result<core::ClientLib::Volume*> r) {
                                   if (r.ok()) source = *r;
                                 });
  cluster.RunFor(sim::Seconds(10));
  agent_client->AllocateAndMount("rebuild-svc-replacement", GiB(4),
                                 [&](Result<core::ClientLib::Volume*> r) {
                                   if (r.ok()) target = *r;
                                 });
  cluster.RunFor(sim::Seconds(10));
  if (source == nullptr || target == nullptr) return {};

  // Seed the replica with tagged data (written by its owner near host 1).
  for (int i = 0; i < kBlocks; ++i) {
    source->Write(static_cast<Bytes>(i) * MiB(4), MiB(4), false, 7000 + i,
                  [](Status) {});
  }
  cluster.RunFor(sim::Seconds(60));

  // The agent mounts the source remotely (reads will flow to host 2).
  core::ClientLib::Volume* agent_source = nullptr;
  agent_client->Mount(source->space(),
                      [&](Result<core::ClientLib::Volume*> r) {
                        if (r.ok()) agent_source = *r;
                      });
  cluster.RunFor(sim::Seconds(5));
  if (agent_source == nullptr) return {};

  if (colocate) {
    // Switch the source disk's group to host 2 first (the §IV-E idea).
    net::RpcEndpoint admin(&cluster.sim(), &cluster.network(),
                           "rebuild-admin");
    auto request = std::make_shared<core::ScheduleRequest>();
    const int group = 1;  // disks 4..7 hold the host-1 allocation
    for (int d = group * 4; d < group * 4 + 4; ++d) {
      request->moves.push_back(
          core::DiskHostPair{"disk-" + std::to_string(d), 2});
    }
    admin.Call("ctrl-0-0", request, sim::Seconds(60),
               [](Result<net::MessagePtr>) {});
    cluster.RunFor(sim::Seconds(20));  // switch + re-expose + remount
  }

  const Bytes total_before = cluster.network().bytes_delivered();
  const Bytes loopback_before =
      cluster.network().bytes_between("rebuild-agent", "host-2");
  services::RebuildAgent agent(&cluster.sim(), agent_source, target);
  RunResult result;
  bool finished = false;
  agent.Rebuild(kBlocks, [&](services::RebuildReport report) {
    result.report = report;
    finished = true;
  });
  cluster.RunFor(sim::Seconds(3600));
  if (!finished) return {};
  // Inter-machine traffic only: subtract the agent's loopback legs.
  const Bytes total = cluster.network().bytes_delivered() - total_before;
  const Bytes loopback =
      cluster.network().bytes_between("rebuild-agent", "host-2") -
      loopback_before;
  result.network_bytes = total - loopback;
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation A4: fabric-assisted rebuild (1.25 GiB replica copy)");
  bench::PrintRow({"Mode", "Status", "Duration s", "MB/s",
                   "Net bytes (GB)"},
                  16);
  for (bool colocate : {false, true}) {
    RunResult result = Run(colocate, colocate ? 31 : 30);
    bench::PrintRow(
        {colocate ? "colocated" : "baseline",
         result.report.status.ToString(),
         bench::Fmt(sim::ToSeconds(result.report.elapsed), 1),
         bench::Fmt(result.report.throughput_mbps, 1),
         bench::Fmt(static_cast<double>(result.network_bytes) / 1e9, 2)},
        16);
  }
  std::printf(
      "\nColocating the source disk with the rebuilding host keeps the\n"
      "recovery traffic off the data-center network and runs the copy at\n"
      "disk speed instead of GbE speed — the §IV-E future-work claim.\n");
  return 0;
}
