// Reproduces Fig. 6 (§VII-B): switching time vs number of disks switched
// simultaneously, broken into the paper's three components:
//   part 1 — disk rejected from the old host until recognized by the USB
//            driver of the new host;
//   part 2 — recognized until exposed onto the network (iSCSI target up);
//   part 3 — exposed until remotely re-mounted by the ClientLib.
//
// The sweep uses the leaf-switched (Fig. 2 left) fabric, whose per-disk
// switches allow any subset of disks to be moved at once. Each case is
// repeated with several seeds (the paper repeats 6 times).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/cluster.h"

namespace {

using namespace ustore;

struct Parts {
  double part1 = 0;  // reject -> recognized (last disk), seconds
  double part2 = 0;  // recognized -> exposed
  double part3 = 0;  // exposed -> remounted
  double total = 0;
};

Parts MeasureSwitch(int n_disks, std::uint64_t seed) {
  core::ClusterOptions options;
  options.fabric_kind = core::FabricKind::kLeafSwitched;
  options.leaf_switched.disks = 12;
  // The left-hand fabric piles 12 disks + 4 hubs onto one root when every
  // switch points the same way, which trips the Intel ~15-device quirk the
  // prototype hit (§V-B). The paper expects driver iterations to fix it;
  // raise the limit for this sweep.
  options.fabric_manager.host_params.max_devices = 20;
  options.seed = seed;
  core::Cluster cluster(options);
  cluster.Start();

  // One volume per disk to be switched.
  auto client = cluster.MakeClient("fig6-client");
  std::vector<core::ClientLib::Volume*> volumes;
  for (int d = 0; d < n_disks; ++d) {
    Result<core::ClientLib::Volume*> volume = InternalError("pending");
    client->AllocateAndMountOnDisk(
        "fig6", GiB(10), "disk-" + std::to_string(d),
        [&](Result<core::ClientLib::Volume*> r) { volume = r; });
    cluster.RunFor(sim::Seconds(8));
    if (!volume.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   volume.status().ToString().c_str());
      return {};
    }
    volumes.push_back(*volume);
  }
  cluster.RunFor(sim::Seconds(5));

  // Issue the scheduling command directly to the primary controller (the
  // paper's experiment is an operator-triggered switch).
  net::RpcEndpoint admin(&cluster.sim(), &cluster.network(), "fig6-admin");
  auto request = std::make_shared<core::ScheduleRequest>();
  for (int d = 0; d < n_disks; ++d) {
    request->moves.push_back(
        core::DiskHostPair{"disk-" + std::to_string(d), 1});
  }
  const sim::Time reject_at = cluster.sim().now();
  admin.Call("ctrl-0-0", request, sim::Seconds(60),
             [](Result<net::MessagePtr>) {});

  // Poll for the three milestones per disk.
  std::vector<sim::Time> recognized(n_disks, -1), exposed(n_disks, -1),
      remounted(n_disks, -1);
  for (int step = 0; step < 12000; ++step) {
    cluster.RunFor(sim::MillisD(10));
    bool all_done = true;
    for (int d = 0; d < n_disks; ++d) {
      const std::string disk = "disk-" + std::to_string(d);
      if (recognized[d] < 0 &&
          cluster.fabric().host_stack(1)->IsRecognized(disk)) {
        recognized[d] = cluster.sim().now();
      }
      if (exposed[d] < 0 && cluster.endpoint(1)->target()->IsExposed(
                                volumes[d]->id().ToString())) {
        exposed[d] = cluster.sim().now();
      }
      if (remounted[d] < 0 && volumes[d]->remount_count() > 0 &&
          volumes[d]->mounted()) {
        remounted[d] = volumes[d]->last_remounted_at();
      }
      all_done &= remounted[d] >= 0;
    }
    if (all_done) break;
  }

  Parts parts;
  sim::Time last_recognized = reject_at, last_exposed = reject_at,
            last_remounted = reject_at;
  for (int d = 0; d < n_disks; ++d) {
    if (recognized[d] < 0 || exposed[d] < 0 || remounted[d] < 0) {
      std::fprintf(stderr, "disk %d never completed switching\n", d);
      return {};
    }
    last_recognized = std::max(last_recognized, recognized[d]);
    last_exposed = std::max(last_exposed, exposed[d]);
    last_remounted = std::max(last_remounted, remounted[d]);
  }
  parts.part1 = sim::ToSeconds(last_recognized - reject_at);
  parts.part2 = sim::ToSeconds(last_exposed - last_recognized);
  parts.part3 = sim::ToSeconds(last_remounted - last_exposed);
  parts.total = sim::ToSeconds(last_remounted - reject_at);
  return parts;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 6: switching time (s) vs number of disks switched at once");
  bench::PrintRow({"Disks", "part1 rec.", "part2 expose", "part3 mount",
                   "total"},
                  14);
  const int counts[] = {1, 2, 4, 8, 12};
  const std::uint64_t seeds[] = {11, 22, 33};  // repetitions
  for (int n : counts) {
    Parts avg;
    for (std::uint64_t seed : seeds) {
      Parts parts = MeasureSwitch(n, seed);
      avg.part1 += parts.part1 / std::size(seeds);
      avg.part2 += parts.part2 / std::size(seeds);
      avg.part3 += parts.part3 / std::size(seeds);
      avg.total += parts.total / std::size(seeds);
    }
    bench::PrintRow({std::to_string(n), bench::Fmt(avg.part1, 2),
                     bench::Fmt(avg.part2, 2), bench::Fmt(avg.part3, 2),
                     bench::Fmt(avg.total, 2)},
                    14);
  }
  std::printf(
      "\nPaper shape: part 1 grows with the number of switched disks\n"
      "(serialized re-enumeration); parts 2 and 3 are flat.\n");
  return 0;
}
