// Reproduces Fig. 5 (§VII-A): total throughput of multiple disks attached
// to a single host through the prototype fabric, for 1/2/4/8/12 disks, and
// the duplex experiment (half readers + half writers -> 540 MB/s per root,
// 2160 MB/s across the 4-host prototype).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fabric/bandwidth.h"
#include "fabric/builders.h"
#include "hw/disk_model.h"

namespace {

using namespace ustore;

double TotalMBps(int disks, const hw::WorkloadSpec& spec) {
  fabric::BuiltFabric f =
      fabric::BuildSingleHostTree({.disks = disks});
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  std::vector<fabric::FlowDemand> demands;
  for (int i = 0; i < disks; ++i) {
    demands.push_back(fabric::FlowDemand{
        f.disks[i], model.Evaluate(spec).bytes_per_sec, spec.read_fraction,
        spec.request_size});
  }
  auto result = fabric::SolveMaxMinFair(f, demands,
                                        hw::UsbHostControllerParams{},
                                        hw::UsbLinkParams{});
  return ToMBps(result.total);
}

}  // namespace

int main() {
  struct Workload {
    const char* name;  // paper naming: size + S/R + R/W
    hw::WorkloadSpec spec;
  };
  const Workload workloads[] = {
      {"4K-S-R", {KiB(4), 1.0, hw::AccessPattern::kSequential}},
      {"4K-S-W", {KiB(4), 0.0, hw::AccessPattern::kSequential}},
      {"4K-R-R", {KiB(4), 1.0, hw::AccessPattern::kRandom}},
      {"4K-R-W", {KiB(4), 0.0, hw::AccessPattern::kRandom}},
      {"4M-S-R", {MiB(4), 1.0, hw::AccessPattern::kSequential}},
      {"4M-S-W", {MiB(4), 0.0, hw::AccessPattern::kSequential}},
      {"4M-R-R", {MiB(4), 1.0, hw::AccessPattern::kRandom}},
      {"4M-R-W", {MiB(4), 0.0, hw::AccessPattern::kRandom}},
  };
  const int disk_counts[] = {1, 2, 4, 8, 12};

  bench::PrintHeader(
      "Fig. 5: total throughput (MB/s) vs number of disks on one host");
  std::vector<std::string> header{"Workload"};
  for (int n : disk_counts) header.push_back(std::to_string(n) + " disks");
  bench::PrintRow(header, 12);
  for (const auto& workload : workloads) {
    std::vector<std::string> row{workload.name};
    for (int n : disk_counts) {
      row.push_back(bench::Fmt(TotalMBps(n, workload.spec)));
    }
    bench::PrintRow(row, 12);
  }

  std::printf(
      "\nPaper shape checks:\n"
      "  - small transfers scale with disk count; 8 disks saturate the\n"
      "    tree for 4KB sequential (transaction cap);\n"
      "  - 2 disks fill the ~300 MB/s root bandwidth for 4MB transfers;\n"
      "  - bandwidth is shared evenly among disks (max-min fairness).\n");

  // --- Duplex experiment ----------------------------------------------------
  bench::PrintHeader("Duplex: half readers + half writers, 4MB sequential");
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  {
    fabric::BuiltFabric f = fabric::BuildSingleHostTree({.disks = 4});
    std::vector<fabric::FlowDemand> demands;
    for (int i = 0; i < 4; ++i) {
      hw::WorkloadSpec spec{MiB(4), i < 2 ? 1.0 : 0.0,
                            hw::AccessPattern::kSequential};
      demands.push_back(fabric::FlowDemand{
          f.disks[i], model.Evaluate(spec).bytes_per_sec,
          spec.read_fraction, spec.request_size});
    }
    auto result = fabric::SolveMaxMinFair(
        f, demands, hw::UsbHostControllerParams{}, hw::UsbLinkParams{});
    std::printf("one root port: %s MB/s total (paper: 540)\n",
                bench::VsPaper(ToMBps(result.total), 540.0).c_str());
  }
  {
    fabric::BuiltFabric f = fabric::BuildPrototypeFabric();
    std::vector<fabric::FlowDemand> demands;
    for (std::size_t i = 0; i < f.disks.size(); ++i) {
      hw::WorkloadSpec spec{MiB(4), i % 2 == 0 ? 1.0 : 0.0,
                            hw::AccessPattern::kSequential};
      demands.push_back(fabric::FlowDemand{
          f.disks[i], model.Evaluate(spec).bytes_per_sec,
          spec.read_fraction, spec.request_size});
    }
    auto result = fabric::SolveMaxMinFair(
        f, demands, hw::UsbHostControllerParams{}, hw::UsbLinkParams{});
    std::printf(
        "16-disk / 4-host prototype: %s MB/s total (paper: 2160)\n",
        bench::VsPaper(ToMBps(result.total), 2160.0).c_str());
  }
  return 0;
}
