// Reproduces the §VII-B HDFS experiment: MiniDfs (1 NameNode, 3 DataNodes,
// 3 replicas) runs on UStore volumes; a disk under one DataNode is
// switched to another host mid-write. The write sees errors for a few
// seconds and resumes; a concurrent-style read is served from replicas
// without interruption.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/cluster.h"
#include "services/mini_dfs.h"

int main() {
  using namespace ustore;
  bench::PrintHeader("MiniDfs under a live disk switch (paper §VII-B)");

  core::Cluster cluster;
  cluster.Start();

  std::vector<net::NodeId> dn_ids = {"dfs-dn-0", "dfs-dn-1", "dfs-dn-2"};
  std::vector<std::unique_ptr<core::ClientLib>> dn_clients;
  std::vector<core::ClientLib::Volume*> dn_volumes;
  std::vector<std::unique_ptr<services::DataNode>> datanodes;
  for (int i = 0; i < 3; ++i) {
    auto client = cluster.MakeClient("dn-client-" + std::to_string(i),
                                     /*locality=*/i + 1);
    Result<core::ClientLib::Volume*> volume = InternalError("pending");
    client->AllocateAndMount("mini-dfs", GiB(10),
                             [&](Result<core::ClientLib::Volume*> r) {
                               volume = r;
                             });
    cluster.RunFor(sim::Seconds(10));
    if (!volume.ok()) {
      std::fprintf(stderr, "allocation failed: %s\n",
                   volume.status().ToString().c_str());
      return 1;
    }
    datanodes.push_back(std::make_unique<services::DataNode>(
        &cluster.sim(), &cluster.network(), dn_ids[i], *volume));
    dn_clients.push_back(std::move(client));
    dn_volumes.push_back(*volume);
  }
  services::NameNode namenode(&cluster.sim(), &cluster.network(), "dfs-nn",
                              dn_ids);
  services::DfsClient dfs(&cluster.sim(), &cluster.network(), "dfs-client",
                          "dfs-nn");

  // Start a 24-block write, then switch the disk under DataNode 0 by
  // crashing its host (the fabric moves the whole disk group).
  const std::string moved_disk = dn_volumes[0]->id().disk;
  const int victim =
      cluster.active_master()->CurrentHostOfDisk(moved_disk);
  services::DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs.WriteFile("/bench/big-file", 24, 4000,
                [&](services::DfsClient::WriteReport r) { write = r; });
  cluster.RunFor(sim::Seconds(3));
  std::printf("switching disks of host %d (disk %s serves DataNode 0)...\n",
              victim, moved_disk.c_str());
  cluster.CrashHost(victim);
  cluster.RunFor(sim::Seconds(150));

  std::printf("\nWrite: %s, transient replica errors: %d, stalled %.1f s\n",
              write.status.ToString().c_str(), write.transient_errors,
              sim::ToSeconds(write.stalled));

  services::DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs.ReadFile("/bench/big-file",
               [&](services::DfsClient::ReadReport r) { read = r; });
  cluster.RunFor(sim::Seconds(120));
  int tag_errors = 0;
  for (std::size_t i = 0; i < read.tags.size(); ++i) {
    if (read.tags[i] != 4000 + i) ++tag_errors;
  }
  std::printf("Read:  %s, blocks: %zu, replica failovers: %d, "
              "integrity errors: %d\n",
              read.status.ToString().c_str(), read.tags.size(),
              read.replica_failovers, tag_errors);

  std::printf(
      "\nPaper behaviour: \"the HDFS client encounters error only for\n"
      "several seconds, then it resumes\"; reads are not interrupted.\n");
  const bool ok = write.status.ok() && read.status.ok() &&
                  tag_errors == 0 && write.stalled > 0 &&
                  write.stalled < sim::Seconds(60);
  std::printf("Result: %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
