// Ablation A1: the Fig. 2 design choice — leaf-switched full trees (left)
// vs switching higher in the tree (right, the prototype). Compares parts
// count, fabric cost, fault coverage and aggregate duplex throughput for
// 16..64-disk deploy units.
#include <cstdio>
#include <vector>

#include "baselines/baselines.h"
#include "bench_util.h"
#include "cost/cost_model.h"
#include "fabric/bandwidth.h"
#include "fabric/builders.h"
#include "hw/disk_model.h"

namespace {

using namespace ustore;

double DuplexThroughput(const fabric::BuiltFabric& f) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  std::vector<fabric::FlowDemand> demands;
  for (std::size_t i = 0; i < f.disks.size(); ++i) {
    hw::WorkloadSpec spec{MiB(4), i % 2 == 0 ? 1.0 : 0.0,
                          hw::AccessPattern::kSequential};
    demands.push_back(fabric::FlowDemand{
        f.disks[i], model.Evaluate(spec).bytes_per_sec, spec.read_fraction,
        spec.request_size});
  }
  auto result = fabric::SolveMaxMinFair(
      f, demands, hw::UsbHostControllerParams{}, hw::UsbLinkParams{});
  return ToMBps(result.total);
}

void Report(const char* name,
            const std::function<fabric::BuiltFabric()>& make) {
  fabric::BuiltFabric f = make();
  const fabric::FabricBom bom = fabric::CountBom(f);
  const auto coverage = baselines::AnalyzeSingleFaultCoverage(make);
  bench::PrintRow(
      {name, std::to_string(f.disks.size()), std::to_string(f.hosts.size()),
       std::to_string(bom.hubs), std::to_string(bom.switches),
       bench::Fmt(cost::FabricCost(bom), 0),
       std::to_string(coverage.fully_tolerated) + "/" +
           std::to_string(coverage.scenarios.size()),
       std::to_string(coverage.worst_case_lost),
       bench::Fmt(DuplexThroughput(f), 0)},
      12);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation A1: Fig. 2 left (leaf-switched) vs right (high-level)");
  bench::PrintRow({"Design", "Disks", "Hosts", "Hubs", "Switches",
                   "Fabric $", "Tolerated", "WorstLoss", "Duplex MB/s"},
                  12);

  for (int disks : {16, 32, 64}) {
    const int groups = disks / 4;
    Report(("right-" + std::to_string(disks)).c_str(), [groups] {
      return fabric::BuildPrototypeFabric(
          {.groups = groups, .disks_per_leaf = 4});
    });
    Report(("left-" + std::to_string(disks)).c_str(), [disks] {
      // Balance the two trees: odd disks switch to host 1.
      fabric::BuiltFabric f =
          fabric::BuildLeafSwitchedFabric({.disks = disks});
      for (int d = 1; d < disks; d += 2) {
        auto sw = f.topology.Find("swd-" + std::to_string(d));
        if (sw.ok()) f.topology.SetSwitch(*sw, true);
      }
      return f;
    });
    Report(("plain-" + std::to_string(disks)).c_str(), [disks] {
      return fabric::BuildSingleHostTree({.disks = disks});
    });
  }

  std::printf(
      "\nTrade-off (§III-A/§IV-E): the right-hand design needs far fewer\n"
      "switches (cost) and spreads disks over more hosts (throughput), but\n"
      "a leaf-hub failure strands its 4 disks; the left-hand design\n"
      "tolerates every single hub failure at higher part count and only 2\n"
      "root hosts; the plain tree is cheapest and tolerates nothing.\n");
  return 0;
}
