// Reproduces Table V (§VII-C): whole-system power of a 16-disk unit under
// DD860/ES30, Pergamum and UStore, for the two canonical archival states
// (disks spinning vs powered off).
#include <cstdio>

#include "bench_util.h"
#include "power/power_model.h"

int main() {
  using namespace ustore;
  bench::PrintHeader("Table V: 16-disk system power (watts)");
  bench::PrintRow({"State", "DD860/ES30", "Pergamum", "UStore"}, 18);

  const double paper_spin[3] = {222.5, 193.5, 166.8};
  const double paper_off[3] = {83.5, 28.9, 22.1};

  auto dd_spin = power::Dd860Es30Power(power::SystemState::kSpinning);
  auto pg_spin = power::PergamumPower(16, power::SystemState::kSpinning);
  auto us_spin = power::UStorePower(16, power::SystemState::kSpinning);
  bench::PrintRow({"Spinning", bench::VsPaper(dd_spin.total, paper_spin[0]),
                   bench::VsPaper(pg_spin.total, paper_spin[1]),
                   bench::VsPaper(us_spin.total, paper_spin[2])},
                  18);

  auto dd_off = power::Dd860Es30Power(power::SystemState::kPoweredOff);
  auto pg_off = power::PergamumPower(16, power::SystemState::kPoweredOff);
  auto us_off = power::UStorePower(16, power::SystemState::kPoweredOff);
  bench::PrintRow({"Powered off", bench::VsPaper(dd_off.total, paper_off[0]),
                   bench::VsPaper(pg_off.total, paper_off[1]),
                   bench::VsPaper(us_off.total, paper_off[2])},
                  18);

  std::printf("\nUStore breakdown (spinning): disks+bridges %.1f W, fabric "
              "%.1f W, adaptors %.1f W, fans %.1f W, PSU %.0f%%\n",
              us_spin.disks, us_spin.interconnect, us_spin.adaptors,
              us_spin.fans, us_spin.psu_efficiency * 100);
  std::printf("Fabric power drop when idle: %.0f%% (paper: ~71%%)\n",
              100.0 * (1.0 - us_off.interconnect / us_spin.interconnect));
  return 0;
}
