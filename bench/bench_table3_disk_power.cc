// Reproduces Table III (§VII-C): power consumption of one disk over SATA
// and behind the USB bridge, in spin-down / idle / read-write states.
// Cross-checked against the live hw::Disk state machine.
#include <cstdio>

#include "bench_util.h"
#include "hw/disk.h"
#include "power/power_model.h"
#include "sim/simulator.h"

int main() {
  using namespace ustore;
  bench::PrintHeader("Table III: power of one disk (watts)");
  bench::PrintRow({"Mode", "Specs", "SATA (paper)", "USB (paper)"}, 20);

  const auto sata = power::SataDiskPower();
  const auto usb = power::UsbDiskPower();
  bench::PrintRow({"Spin Down", "1.0",
                   bench::VsPaper(sata.spin_down, 0.05, 2),
                   bench::VsPaper(usb.spin_down, 1.56, 2)},
                  20);
  bench::PrintRow({"Idle", "5.2", bench::VsPaper(sata.idle, 4.71, 2),
                   bench::VsPaper(usb.idle, 5.76, 2)},
                  20);
  bench::PrintRow({"Read/Write", "6.4",
                   bench::VsPaper(sata.read_write, 6.66, 2),
                   bench::VsPaper(usb.read_write, 7.56, 2)},
                  20);

  // Cross-check against the stateful disk model.
  sim::Simulator sim;
  hw::Disk disk(&sim, "d", hw::DiskModel(hw::DiskParams{},
                                         hw::UsbBridgeInterface()));
  std::printf("\nLive hw::Disk (USB bridge): idle %.2f W",
              disk.current_power());
  disk.SubmitIo({MiB(4), hw::IoDirection::kRead,
                 hw::AccessPattern::kSequential},
                [](Status) {});
  sim.RunFor(sim::MillisD(5));
  std::printf(", active %.2f W", disk.current_power());
  sim.Run();
  disk.SpinDown();
  std::printf(", spun down %.2f W\n", disk.current_power());
  return 0;
}
