// Quickstart: bring up a simulated UStore deploy unit (16 disks, 4 hosts),
// allocate storage through the ClientLib, mount it as a block volume and
// do verified I/O.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/cluster.h"

using namespace ustore;

int main() {
  // 1. One deploy unit: USB fat-tree fabric, metadata quorum, Masters,
  //    EndPoints, Controllers — all simulated in-process.
  core::Cluster cluster;
  cluster.Start();
  std::printf("cluster up: %d hosts, %zu disks, active master: %s\n",
              cluster.host_count(), cluster.fabric().fabric().disks.size(),
              cluster.active_master()->id().c_str());

  // 2. A client allocates 100 GiB for its service and mounts it.
  auto client = cluster.MakeClient("quickstart-client");
  core::ClientLib::Volume* volume = nullptr;
  client->AllocateAndMount(
      "quickstart-svc", GiB(100),
      [&](Result<core::ClientLib::Volume*> result) {
        if (!result.ok()) {
          std::printf("allocation failed: %s\n",
                      result.status().ToString().c_str());
          return;
        }
        volume = *result;
      });
  cluster.RunFor(sim::Seconds(10));
  if (volume == nullptr) return 1;
  std::printf("allocated %s (%s) on %s\n",
              volume->id().ToString().c_str(),
              FormatBytes(volume->space().length).c_str(),
              volume->current_host().c_str());

  // 3. Write a tagged block, read it back, verify.
  bool ok = false;
  volume->Write(0, MiB(4), /*random=*/false, /*tag=*/0x5EED,
                [&](Status status) {
                  if (!status.ok()) return;
                  volume->Read(0, MiB(4), false,
                               [&](Result<std::uint64_t> tag) {
                                 ok = tag.ok() && *tag == 0x5EED;
                               });
                });
  cluster.RunFor(sim::Seconds(5));
  std::printf("write+read round trip: %s\n", ok ? "OK" : "FAILED");

  // 4. Where is my data? The directory service knows.
  client->Lookup(volume->id(), [&](Result<core::LookupResponse> lookup) {
    if (lookup.ok()) {
      std::printf("lookup: host=%s available=%s\n", lookup->host.c_str(),
                  lookup->available ? "yes" : "no");
    }
  });
  cluster.RunFor(sim::Seconds(2));
  return ok ? 0 : 1;
}
