// A distributed file system on top of UStore (the paper's motivating
// upper-layer service): MiniDfs stores 3-way-replicated blocks on UStore
// volumes, demonstrating that "traditional storage systems can be deployed
// above UStore with little modification, using UStore storage as raw
// disks".
//
//   $ ./examples/dfs_on_ustore
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "services/mini_dfs.h"

using namespace ustore;

int main() {
  core::Cluster cluster;
  cluster.Start();

  // Three DataNodes, each storing blocks on a UStore volume near hosts
  // 1..3; the NameNode tracks placement.
  std::vector<net::NodeId> dn_ids = {"dn-0", "dn-1", "dn-2"};
  std::vector<std::unique_ptr<core::ClientLib>> clients;
  std::vector<std::unique_ptr<services::DataNode>> datanodes;
  for (int i = 0; i < 3; ++i) {
    auto client = cluster.MakeClient("dn-client-" + std::to_string(i),
                                     /*locality=*/i + 1);
    core::ClientLib::Volume* volume = nullptr;
    client->AllocateAndMount("example-dfs", GiB(20),
                             [&](Result<core::ClientLib::Volume*> r) {
                               if (r.ok()) volume = *r;
                             });
    cluster.RunFor(sim::Seconds(10));
    if (volume == nullptr) {
      std::printf("DataNode %d volume allocation failed\n", i);
      return 1;
    }
    std::printf("DataNode %d: volume %s on %s\n", i,
                volume->id().ToString().c_str(),
                volume->current_host().c_str());
    datanodes.push_back(std::make_unique<services::DataNode>(
        &cluster.sim(), &cluster.network(), dn_ids[i], volume));
    clients.push_back(std::move(client));
  }
  services::NameNode namenode(&cluster.sim(), &cluster.network(), "nn",
                              dn_ids);
  services::DfsClient dfs(&cluster.sim(), &cluster.network(), "dfs-client",
                          "nn");

  // Write a 10-block file (3 replicas per block), then read it back.
  services::DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs.WriteFile("/backups/2026-07-07.tar", 10, 500,
                [&](services::DfsClient::WriteReport r) { write = r; });
  cluster.RunFor(sim::Seconds(60));
  std::printf("\nwrite: %s (replica errors: %d)\n",
              write.status.ToString().c_str(), write.transient_errors);

  services::DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs.ReadFile("/backups/2026-07-07.tar",
               [&](services::DfsClient::ReadReport r) { read = r; });
  cluster.RunFor(sim::Seconds(60));
  bool intact = read.status.ok() && read.tags.size() == 10;
  for (std::size_t i = 0; intact && i < read.tags.size(); ++i) {
    intact = read.tags[i] == 500 + i;
  }
  std::printf("read:  %s, 10 blocks, integrity %s\n",
              read.status.ToString().c_str(), intact ? "OK" : "BROKEN");

  std::size_t total_blocks = 0;
  for (const auto& dn : datanodes) total_blocks += dn->blocks_stored();
  std::printf("replicas stored across DataNodes: %zu (10 blocks x 3)\n",
              total_blocks);
  return intact ? 0 : 1;
}
