// Failover walkthrough: watch UStore survive a host crash.
//
// Allocates a volume on host 0 (which also runs the primary Controller and
// microcontroller), crashes that host, and narrates what the system does:
// heartbeat detection, backup-controller takeover over the XOR signal bus,
// fabric reconfiguration, re-enumeration, re-expose, client remount.
//
//   $ ./examples/failover_demo
#include <cstdio>

#include "common/logging.h"
#include "core/cluster.h"

using namespace ustore;

int main() {
  Logger::Instance().set_threshold(LogLevel::kInfo);  // show the narration

  core::Cluster cluster;
  cluster.sim().InstallLogTimeSource();
  cluster.Start();

  auto client = cluster.MakeClient("demo-client", /*locality=*/0);
  core::ClientLib::Volume* volume = nullptr;
  client->AllocateAndMount("demo-svc", GiB(10),
                           [&](Result<core::ClientLib::Volume*> result) {
                             if (result.ok()) volume = *result;
                           });
  cluster.RunFor(sim::Seconds(10));
  if (volume == nullptr) {
    std::printf("allocation failed\n");
    return 1;
  }
  volume->Write(0, MiB(4), false, 0xFEED, [](Status) {});
  cluster.RunFor(sim::Seconds(3));

  const std::string disk = volume->id().disk;
  std::printf("\n--- volume %s on disk %s, host %d; primary mcu powered=%d,"
              " backup mcu powered=%d ---\n",
              volume->id().ToString().c_str(), disk.c_str(),
              cluster.active_master()->CurrentHostOfDisk(disk),
              cluster.fabric().mcu(0)->powered() ? 1 : 0,
              cluster.fabric().mcu(1)->powered() ? 1 : 0);

  std::printf("\n--- CRASHING host 0 (runs the primary controller!) ---\n\n");
  const sim::Time crash_at = cluster.sim().now();
  cluster.CrashHost(0);
  cluster.RunFor(sim::Seconds(30));

  const int new_host = cluster.active_master()->CurrentHostOfDisk(disk);
  std::printf("\n--- after failover ---\n");
  std::printf("disk %s now on host %d; backup mcu powered=%d\n",
              disk.c_str(), new_host,
              cluster.fabric().mcu(1)->powered() ? 1 : 0);
  std::printf("volume mounted=%d remounts=%d, recovery took %.2f s\n",
              volume->mounted() ? 1 : 0, volume->remount_count(),
              sim::ToSeconds(volume->last_remounted_at() - crash_at));

  // The data survived the trip.
  bool ok = false;
  volume->Read(0, MiB(4), false, [&](Result<std::uint64_t> tag) {
    ok = tag.ok() && *tag == 0xFEED;
  });
  cluster.RunFor(sim::Seconds(5));
  std::printf("data intact after failover: %s\n", ok ? "YES" : "NO");
  return ok && new_host > 0 ? 0 : 1;
}
