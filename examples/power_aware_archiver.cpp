// Power-aware cold archiving (§IV-F): an archival service writes batches,
// spins its disk down between them through the UStore power interface, and
// a PowerMeter tracks what the disk+bridge actually drew — compare with
// leaving the disk idling 24/7.
//
//   $ ./examples/power_aware_archiver
#include <cstdio>

#include "core/cluster.h"
#include "power/power_model.h"
#include "services/archiver.h"

using namespace ustore;

int main() {
  core::Cluster cluster;
  cluster.Start();

  auto client = cluster.MakeClient("archiver");
  core::ClientLib::Volume* volume = nullptr;
  client->AllocateAndMount("cold-archive", GiB(100),
                           [&](Result<core::ClientLib::Volume*> r) {
                             if (r.ok()) volume = *r;
                           });
  cluster.RunFor(sim::Seconds(10));
  if (volume == nullptr) {
    std::printf("allocation failed\n");
    return 1;
  }
  services::Archiver archiver(client.get(), volume, "cold-archive");
  hw::Disk* disk = cluster.fabric().disk(volume->id().disk);

  // Sample the disk's power draw every simulated second.
  power::PowerMeter meter;
  sim::Timer sampler(&cluster.sim());
  sampler.StartPeriodic(sim::Seconds(1), [&] {
    meter.Sample(cluster.sim().now(), disk->current_power());
  });

  // Three archival batches, one hour apart; standby in between.
  const sim::Time t0 = cluster.sim().now();
  for (int batch = 0; batch < 3; ++batch) {
    Status status = InternalError("pending");
    archiver.ArchiveBatch(25, MiB(4), [&](Status s) { status = s; });
    cluster.RunFor(sim::Seconds(60));
    if (!status.ok()) {
      std::printf("batch %d failed: %s\n", batch,
                  status.ToString().c_str());
      return 1;
    }
    archiver.EnterStandby([](Status) {});
    std::printf("batch %d archived (%s so far), disk -> standby\n", batch,
                FormatBytes(archiver.bytes_archived()).c_str());
    cluster.RunFor(sim::Seconds(3600 - 60));  // idle hour
  }

  // Verify everything we archived, then report energy.
  Status verify = InternalError("pending");
  archiver.VerifyBatch(0, 75, [&](Status s) { verify = s; });
  cluster.RunFor(sim::Seconds(120));
  std::printf("verification of 75 objects: %s\n",
              verify.ToString().c_str());

  const double hours =
      sim::ToSeconds(cluster.sim().now() - t0) / 3600.0;
  const double idle_baseline = 5.76;  // disk+bridge idling (Table III)
  std::printf(
      "\nenergy over %.1f h: %.1f Wh (avg %.2f W) vs %.1f Wh if the disk "
      "idled 24/7 — %.0f%% saved by spin-down\n",
      hours, meter.total_energy() / 3600.0, meter.average_power(),
      idle_baseline * hours,
      100.0 * (1.0 - meter.average_power() / idle_baseline));
  return verify.ok() ? 0 : 1;
}
