// Bandwidth-solver tests: reproduces the Fig. 5 shapes analytically and
// checks max-min fairness properties.
#include <gtest/gtest.h>

#include <vector>

#include "fabric/bandwidth.h"
#include "fabric/builders.h"
#include "hw/disk_model.h"

namespace ustore::fabric {
namespace {

hw::DiskModel UsbDiskModel() {
  return hw::DiskModel(hw::DiskParams{}, hw::UsbBridgeInterface());
}

// Builds N identical demands for disks of a single-host tree.
std::vector<FlowDemand> UniformDemands(const BuiltFabric& f, int n,
                                       const hw::WorkloadSpec& spec) {
  const auto standalone = UsbDiskModel().Evaluate(spec);
  std::vector<FlowDemand> demands;
  for (int i = 0; i < n; ++i) {
    demands.push_back(FlowDemand{f.disks[i], standalone.bytes_per_sec,
                                 spec.read_fraction, spec.request_size});
  }
  return demands;
}

BandwidthResult Solve(const BuiltFabric& f,
                      const std::vector<FlowDemand>& demands) {
  return SolveMaxMinFair(f, demands, hw::UsbHostControllerParams{},
                         hw::UsbLinkParams{});
}

TEST(BandwidthTest, SingleDiskGetsItsDemand) {
  BuiltFabric f = BuildSingleHostTree({.disks = 1});
  hw::WorkloadSpec spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
  auto result = Solve(f, UniformDemands(f, 1, spec));
  EXPECT_NEAR(ToMBps(result.total), 185.8, 4.0);  // Table II single disk
}

TEST(BandwidthTest, TwoLargeReadersFillRootBandwidth) {
  // §VII-A: "For large transfers, two disks are enough to fill up the root
  // hub's bandwidth, which is around 300MB/s."
  BuiltFabric f = BuildSingleHostTree({.disks = 2});
  hw::WorkloadSpec spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
  auto result = Solve(f, UniformDemands(f, 2, spec));
  EXPECT_NEAR(ToMBps(result.total), 300.0, 1.0);
  // Shared evenly.
  EXPECT_NEAR(ToMBps(result.flows[0].rate), 150.0, 1.0);
  EXPECT_NEAR(ToMBps(result.flows[1].rate), 150.0, 1.0);
}

TEST(BandwidthTest, LargeTransfersStayAtRootCapAsDisksGrow) {
  for (int n : {4, 8, 12}) {
    BuiltFabric f = BuildSingleHostTree({.disks = n});
    hw::WorkloadSpec spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
    auto result = Solve(f, UniformDemands(f, n, spec));
    EXPECT_NEAR(ToMBps(result.total), 300.0, 1.0) << n << " disks";
  }
}

TEST(BandwidthTest, SmallSequentialScalesThenSaturatesAtEightDisks) {
  // §VII-A: "The sequential throughput of 8 disks can saturate the USB
  // tree" — small transfers are transaction-limited, not bandwidth-limited.
  hw::WorkloadSpec spec{KiB(4), 1.0, hw::AccessPattern::kSequential};
  const double single =
      ToMBps(UsbDiskModel().Evaluate(spec).bytes_per_sec);

  double prev_total = 0;
  for (int n : {1, 2, 4}) {
    BuiltFabric f = BuildSingleHostTree({.disks = n});
    auto result = Solve(f, UniformDemands(f, n, spec));
    EXPECT_NEAR(ToMBps(result.total), n * single, 0.5) << n << " disks";
    EXPECT_GT(ToMBps(result.total), prev_total);
    prev_total = ToMBps(result.total);
  }
  // At 8 and 12 disks the transaction cap binds: total stops growing.
  BuiltFabric f8 = BuildSingleHostTree({.disks = 8});
  auto r8 = Solve(f8, UniformDemands(f8, 8, spec));
  BuiltFabric f12 = BuildSingleHostTree({.disks = 12});
  auto r12 = Solve(f12, UniformDemands(f12, 12, spec));
  const double cap_mbps =
      ToMBps(hw::UsbHostControllerParams{}.transaction_cap * 4096.0);
  EXPECT_NEAR(ToMBps(r8.total), cap_mbps, 2.0);
  EXPECT_NEAR(ToMBps(r12.total), cap_mbps, 2.0);
  EXPECT_LT(ToMBps(r8.total), 8 * single);
}

TEST(BandwidthTest, SmallRandomScalesLinearlyThroughTwelveDisks) {
  // Random 4KB is seek-bound (~190 IO/s/disk) — nowhere near any fabric cap.
  hw::WorkloadSpec spec{KiB(4), 1.0, hw::AccessPattern::kRandom};
  const double single =
      ToMBps(UsbDiskModel().Evaluate(spec).bytes_per_sec);
  BuiltFabric f = BuildSingleHostTree({.disks = 12});
  auto result = Solve(f, UniformDemands(f, 12, spec));
  EXPECT_NEAR(ToMBps(result.total), 12 * single, 0.2);
}

TEST(BandwidthTest, DuplexDoublesThroughput) {
  // §VII-A: half readers + half writers reach ~540 MB/s on one root.
  BuiltFabric f = BuildSingleHostTree({.disks = 4});
  hw::WorkloadSpec read_spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
  hw::WorkloadSpec write_spec{MiB(4), 0.0, hw::AccessPattern::kSequential};
  std::vector<FlowDemand> demands;
  for (int i = 0; i < 4; ++i) {
    const auto& spec = i < 2 ? read_spec : write_spec;
    demands.push_back(FlowDemand{f.disks[i],
                                 UsbDiskModel().Evaluate(spec).bytes_per_sec,
                                 spec.read_fraction, spec.request_size});
  }
  auto result = Solve(f, demands);
  EXPECT_NEAR(ToMBps(result.total), 540.0, 2.0);
  EXPECT_NEAR(ToMBps(result.total_read), 270.0, 2.0);
  EXPECT_NEAR(ToMBps(result.total_write), 270.0, 2.0);
}

TEST(BandwidthTest, PrototypeFourHostsSustain2160) {
  // The headline number: 4 hosts x 540 MB/s duplex = 2160 MB/s.
  BuiltFabric f = BuildPrototypeFabric();
  std::vector<FlowDemand> demands;
  for (std::size_t i = 0; i < f.disks.size(); ++i) {
    hw::WorkloadSpec spec{MiB(4), i % 2 == 0 ? 1.0 : 0.0,
                          hw::AccessPattern::kSequential};
    demands.push_back(FlowDemand{f.disks[i],
                                 UsbDiskModel().Evaluate(spec).bytes_per_sec,
                                 spec.read_fraction, spec.request_size});
  }
  auto result = Solve(f, demands);
  EXPECT_NEAR(ToMBps(result.total), 2160.0, 10.0);
}

TEST(BandwidthTest, DetachedDiskGetsZero) {
  BuiltFabric f = BuildSingleHostTree({.disks = 2});
  f.topology.SetFailed(f.disks[1], true);
  hw::WorkloadSpec spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
  auto result = Solve(f, UniformDemands(f, 2, spec));
  EXPECT_TRUE(result.flows[0].attached);
  EXPECT_FALSE(result.flows[1].attached);
  EXPECT_DOUBLE_EQ(result.flows[1].rate, 0.0);
  EXPECT_NEAR(ToMBps(result.total), 185.8, 4.0);
}

TEST(BandwidthTest, MaxMinProtectsSmallFlows) {
  // A disk with a tiny demand keeps it; big flows split the rest.
  BuiltFabric f = BuildSingleHostTree({.disks = 3});
  hw::WorkloadSpec big{MiB(4), 1.0, hw::AccessPattern::kSequential};
  std::vector<FlowDemand> demands = UniformDemands(f, 3, big);
  demands[2].demand = MBps(10);  // small flow
  auto result = Solve(f, demands);
  EXPECT_NEAR(ToMBps(result.flows[2].rate), 10.0, 0.1);
  EXPECT_NEAR(ToMBps(result.flows[0].rate), 145.0, 1.0);
  EXPECT_NEAR(ToMBps(result.flows[1].rate), 145.0, 1.0);
}

TEST(BandwidthTest, HubUplinkIsItsOwnBottleneck) {
  // 4 disks behind ONE hub whose uplink duplex-caps at 540: readers on the
  // same hub cannot exceed 300 MB/s even if the host could take more.
  BuiltFabric f = BuildSingleHostTree({.disks = 8});
  hw::WorkloadSpec spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
  // Only load the 4 disks of hub-0.
  auto demands = UniformDemands(f, 4, spec);
  auto result = Solve(f, demands);
  EXPECT_NEAR(ToMBps(result.total), 300.0, 1.0);
}

TEST(BandwidthTest, AllocationNeverExceedsDemand) {
  BuiltFabric f = BuildSingleHostTree({.disks = 12});
  for (double rf : {1.0, 0.5, 0.0}) {
    hw::WorkloadSpec spec{KiB(4), rf, hw::AccessPattern::kSequential};
    auto demands = UniformDemands(f, 12, spec);
    auto result = Solve(f, demands);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      EXPECT_LE(result.flows[i].rate, demands[i].demand * (1 + 1e-6));
    }
  }
}

TEST(BandwidthTest, EmptyDemandsYieldEmptyResult) {
  BuiltFabric f = BuildSingleHostTree({.disks = 1});
  auto result = Solve(f, {});
  EXPECT_DOUBLE_EQ(result.total, 0.0);
  EXPECT_TRUE(result.flows.empty());
}

}  // namespace
}  // namespace ustore::fabric
