// Property tests for the incremental sparse max-min solver and the memoized
// active-path cache: against randomized fabrics and mutation sequences, the
// persistent BandwidthSolver must allocate identically (within tolerance) to
// the retained dense reference implementation, and Topology::ActivePath must
// match an uncached walk after every mutation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "fabric/bandwidth.h"
#include "fabric/builders.h"
#include "fabric/topology.h"
#include "hw/usb.h"

namespace ustore::fabric {
namespace {

// Allocation rates are in bytes/sec (1e6..1e9 magnitude), so a relative
// tolerance with an absolute floor absorbs FP summation-order differences
// between the incremental and re-summed formulations.
double Tol(double reference) {
  const double rel = (reference < 0 ? -reference : reference) * 1e-6;
  return rel > 1.0 ? rel : 1.0;
}

void ExpectSameAllocation(const BandwidthResult& got,
                          const BandwidthResult& want, const char* context) {
  ASSERT_EQ(got.flows.size(), want.flows.size()) << context;
  for (std::size_t i = 0; i < want.flows.size(); ++i) {
    SCOPED_TRACE(testing::Message() << context << " flow " << i);
    EXPECT_EQ(got.flows[i].attached, want.flows[i].attached);
    EXPECT_NEAR(got.flows[i].rate, want.flows[i].rate, Tol(want.flows[i].rate));
    EXPECT_NEAR(got.flows[i].read_rate, want.flows[i].read_rate,
                Tol(want.flows[i].read_rate));
    EXPECT_NEAR(got.flows[i].write_rate, want.flows[i].write_rate,
                Tol(want.flows[i].write_rate));
  }
  EXPECT_NEAR(got.total, want.total, Tol(want.total)) << context;
  EXPECT_NEAR(got.total_read, want.total_read, Tol(want.total_read)) << context;
  EXPECT_NEAR(got.total_write, want.total_write, Tol(want.total_write))
      << context;
}

void ExpectPathCacheMatchesWalk(const Topology& topology) {
  for (NodeIndex i = 0; i < topology.size(); ++i) {
    EXPECT_EQ(topology.ActivePath(i), topology.WalkActivePath(i))
        << "node " << i << " (" << topology.node(i).name << ")";
  }
}

std::vector<FlowDemand> RandomDemands(const BuiltFabric& f, Rng& rng) {
  static constexpr Bytes kSizes[] = {KiB(4), KiB(64), MiB(1)};
  std::vector<FlowDemand> demands;
  for (NodeIndex disk : f.disks) {
    if (rng.NextBool(0.15)) continue;  // some disks idle
    FlowDemand d;
    d.disk = disk;
    d.demand = 1e6 * rng.NextInRange(1, 400);  // 1..400 MB/s
    d.read_fraction = rng.NextDouble();
    d.request_size = kSizes[rng.NextBelow(3)];
    demands.push_back(d);
  }
  return demands;
}

// Applies one random mutation; returns whether anything may have changed.
void RandomMutation(Topology& topology, Rng& rng) {
  const std::vector<NodeIndex> switches =
      topology.NodesOfKind(NodeKind::kSwitch);
  const NodeIndex victim = static_cast<NodeIndex>(
      rng.NextBelow(static_cast<std::uint64_t>(topology.size())));
  switch (rng.NextBelow(switches.empty() ? 2 : 3)) {
    case 0:
      topology.SetFailed(victim, rng.NextBool(0.5));
      break;
    case 1:
      topology.SetPowered(victim, rng.NextBool(0.8));
      break;
    default:
      topology.SetSwitch(
          static_cast<NodeIndex>(switches[rng.NextBelow(switches.size())]),
          rng.NextBool(0.5));
      break;
  }
}

void RunEquivalenceTrial(BuiltFabric f, std::uint64_t seed) {
  Rng rng(seed);
  const hw::UsbHostControllerParams host_params{};
  const hw::UsbLinkParams hub_link{};
  BandwidthSolver solver(&f, host_params, hub_link);

  std::vector<FlowDemand> demands = RandomDemands(f, rng);
  for (int step = 0; step < 60; ++step) {
    if (rng.NextBool(0.4)) {
      RandomMutation(f.topology, rng);
      ExpectPathCacheMatchesWalk(f.topology);
    }
    if (rng.NextBool(0.3)) {
      demands = RandomDemands(f, rng);  // new shape: forces a rebuild
    } else {
      for (FlowDemand& d : demands) {  // same shape, new values: no rebuild
        d.demand = 1e6 * rng.NextInRange(1, 400);
      }
    }
    SCOPED_TRACE(testing::Message() << "seed " << seed << " step " << step);
    ExpectSameAllocation(
        solver.Solve(demands),
        SolveMaxMinFairReference(f, demands, host_params, hub_link), "solve");
  }
}

TEST(SolverEquivalenceTest, PrototypeFabricRandomized) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng shape(seed * 977);
    PrototypeOptions options;
    options.groups = static_cast<int>(2 + shape.NextBelow(4));
    options.disks_per_leaf = static_cast<int>(2 + shape.NextBelow(3));
    RunEquivalenceTrial(BuildPrototypeFabric(options), seed);
  }
}

TEST(SolverEquivalenceTest, SingleHostTreeRandomized) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng shape(seed * 1471);
    SingleHostTreeOptions options;
    options.disks = static_cast<int>(2 + shape.NextBelow(11));
    RunEquivalenceTrial(BuildSingleHostTree(options), seed);
  }
}

TEST(SolverEquivalenceTest, LeafSwitchedFabricRandomized) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng shape(seed * 31337);
    LeafSwitchedOptions options;
    options.disks = static_cast<int>(4 + 4 * shape.NextBelow(4));
    RunEquivalenceTrial(BuildLeafSwitchedFabric(options), seed);
  }
}

TEST(SolverEquivalenceTest, RepeatedSolvesWithoutMutationDoNotRebuild) {
  BuiltFabric f = BuildPrototypeFabric({.groups = 4});
  BandwidthSolver solver(&f, hw::UsbHostControllerParams{},
                         hw::UsbLinkParams{});
  Rng rng(7);
  std::vector<FlowDemand> demands = RandomDemands(f, rng);
  solver.Solve(demands);
  EXPECT_EQ(solver.rebuild_count(), 1u);
  for (int i = 0; i < 20; ++i) {
    for (FlowDemand& d : demands) {
      d.demand = 1e6 * rng.NextInRange(1, 400);
    }
    solver.Solve(demands);
  }
  EXPECT_EQ(solver.solve_count(), 21u);
  EXPECT_EQ(solver.rebuild_count(), 1u);  // demand values alone never rebuild

  f.topology.SetSwitch(f.switches[0], !f.topology.node(f.switches[0]).select);
  solver.Solve(demands);
  EXPECT_EQ(solver.rebuild_count(), 2u);  // topology mutation rebuilds once
  solver.Solve(demands);
  EXPECT_EQ(solver.rebuild_count(), 2u);
}

TEST(SolverEquivalenceTest, WrapperMatchesReference) {
  BuiltFabric f = BuildSingleHostTree({.disks = 8});
  Rng rng(11);
  const std::vector<FlowDemand> demands = RandomDemands(f, rng);
  const hw::UsbHostControllerParams host_params{};
  const hw::UsbLinkParams hub_link{};
  ExpectSameAllocation(
      SolveMaxMinFair(f, demands, host_params, hub_link),
      SolveMaxMinFairReference(f, demands, host_params, hub_link), "wrapper");
}

}  // namespace
}  // namespace ustore::fabric
