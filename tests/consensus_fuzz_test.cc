// Randomized fault-injection fuzzing for the consensus layer.
//
//  * Paxos: random crash/restart/partition schedules under message loss;
//    invariant: no two replicas ever apply different commands at the same
//    log index, and the group keeps making progress when a majority is up.
//  * MetaStore: random op sequences applied both to the replicated system
//    and to a simple in-memory oracle; final states must agree.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consensus/meta_client.h"
#include "consensus/meta_service.h"
#include "consensus/paxos.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ustore::consensus {
namespace {

class PaxosFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxosFuzzTest, NoDivergenceUnderChaos) {
  const std::uint64_t seed = GetParam();
  sim::Simulator sim;
  net::Network network(&sim, Rng(seed));
  net::LinkParams lossy;
  lossy.loss_probability = 0.1;
  network.set_default_link(lossy);

  constexpr int kNodes = 5;
  PaxosConfig config;
  for (int i = 0; i < kNodes; ++i) {
    config.peers.push_back("paxos-" + std::to_string(i));
  }

  std::vector<std::map<std::uint64_t, std::string>> applied(kNodes);
  std::vector<std::unique_ptr<PaxosNode>> nodes;
  Rng rng(seed * 31 + 1);
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<PaxosNode>(
        &sim, &network, config, i,
        [&applied, i](std::uint64_t index, const std::string& command) {
          // Apply is by construction in order and exactly once; record.
          auto [it, inserted] = applied[i].emplace(index, command);
          ASSERT_TRUE(inserted) << "double apply at " << index;
        },
        rng.Fork()));
  }
  sim.RunFor(sim::Seconds(3));

  int proposed = 0;
  for (int round = 0; round < 60; ++round) {
    sim.RunFor(sim::MillisD(500));
    // Random chaos, keeping a majority alive.
    const double dice = rng.NextDouble();
    int stopped = 0;
    for (const auto& node : nodes) stopped += node->stopped() ? 1 : 0;
    if (dice < 0.15 && stopped < kNodes / 2) {
      nodes[rng.NextBelow(kNodes)]->Stop();
    } else if (dice < 0.35) {
      for (auto& node : nodes) {
        if (node->stopped() && rng.NextBool(0.7)) node->Restart();
      }
    } else if (dice < 0.45) {
      const int a = static_cast<int>(rng.NextBelow(kNodes));
      const int b = static_cast<int>(rng.NextBelow(kNodes));
      if (a != b) {
        network.SetPartitioned(config.peers[a], config.peers[b],
                               rng.NextBool(0.5));
      }
    }
    // Pump proposals at whoever claims leadership.
    for (auto& node : nodes) {
      if (!node->stopped() && node->is_leader()) {
        node->Propose("cmd-" + std::to_string(proposed++),
                      [](Result<std::uint64_t>) {});
        break;
      }
    }
  }
  // Heal everything and let the group converge.
  for (auto& node : nodes) {
    if (node->stopped()) node->Restart();
  }
  for (int a = 0; a < kNodes; ++a) {
    for (int b = 0; b < kNodes; ++b) {
      if (a != b) {
        network.SetPartitioned(config.peers[a], config.peers[b], false);
      }
    }
  }
  sim.RunFor(sim::Seconds(20));

  // Safety: indexes applied by two nodes must carry identical commands.
  for (int a = 0; a < kNodes; ++a) {
    for (int b = a + 1; b < kNodes; ++b) {
      for (const auto& [index, command] : applied[a]) {
        auto it = applied[b].find(index);
        if (it != applied[b].end()) {
          ASSERT_EQ(command, it->second)
              << "seed " << seed << ": divergence at index " << index
              << " between " << a << " and " << b;
        }
      }
    }
  }
  // Liveness: after healing, something was committed and all replicas are
  // at the same applied frontier.
  EXPECT_GT(applied[0].size(), 0u) << "seed " << seed;
  for (int i = 1; i < kNodes; ++i) {
    EXPECT_EQ(nodes[i]->applied_up_to(), nodes[0]->applied_up_to())
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// --- MetaStore vs oracle --------------------------------------------------------

class MetaFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetaFuzzTest, ReplicatedStoreMatchesOracle) {
  const std::uint64_t seed = GetParam();
  sim::Simulator sim;
  net::Network network(&sim, Rng(seed));

  MetaService::Options options;
  for (int i = 0; i < 3; ++i) {
    options.paxos.peers.push_back("mp-" + std::to_string(i));
    options.service_ids.push_back("ms-" + std::to_string(i));
  }
  std::vector<std::unique_ptr<MetaService>> services;
  Rng rng(seed * 17 + 3);
  for (int i = 0; i < 3; ++i) {
    services.push_back(std::make_unique<MetaService>(&sim, &network,
                                                     options, i, rng.Fork()));
  }
  MetaClient::Options client_options;
  client_options.servers = options.service_ids;
  MetaClient client(&sim, &network, "fuzz-client", client_options);
  sim.RunFor(sim::Seconds(3));

  // Oracle: path -> (data, version).
  std::map<std::string, std::pair<std::string, std::uint64_t>> oracle;
  const std::vector<std::string> paths = {"/a", "/b", "/a/x", "/a/y",
                                          "/b/z"};
  for (int op = 0; op < 120; ++op) {
    const std::string path =
        paths[rng.NextBelow(paths.size())];
    const double dice = rng.NextDouble();
    Status status = InternalError("pending");
    if (dice < 0.45) {
      const std::string data = "v" + std::to_string(op);
      client.Create(path, data, false, [&](Status s) { status = s; });
      sim.RunFor(sim::Seconds(1));
      const std::string parent =
          path.rfind('/') == 0 ? "/" : path.substr(0, path.rfind('/'));
      const bool parent_ok = parent == "/" || oracle.contains(parent);
      if (!oracle.contains(path) && parent_ok) {
        ASSERT_TRUE(status.ok()) << path;
        oracle[path] = {data, 0};
      } else {
        ASSERT_FALSE(status.ok()) << path;
      }
    } else if (dice < 0.8) {
      const std::string data = "s" + std::to_string(op);
      client.Set(path, data, kAnyVersion, [&](Status s) { status = s; });
      sim.RunFor(sim::Seconds(1));
      if (oracle.contains(path)) {
        ASSERT_TRUE(status.ok()) << path;
        oracle[path].first = data;
        ++oracle[path].second;
      } else {
        ASSERT_EQ(status.code(), StatusCode::kNotFound) << path;
      }
    } else {
      client.Delete(path, kAnyVersion, [&](Status s) { status = s; });
      sim.RunFor(sim::Seconds(1));
      bool has_children = false;
      const std::string prefix = path + "/";
      for (const auto& [p, v] : oracle) {
        if (p.rfind(prefix, 0) == 0) has_children = true;
      }
      if (oracle.contains(path) && !has_children) {
        ASSERT_TRUE(status.ok()) << path;
        oracle.erase(path);
      } else {
        ASSERT_FALSE(status.ok()) << path;
      }
    }
  }

  // Compare final state on every replica.
  sim.RunFor(sim::Seconds(3));
  for (int i = 0; i < 3; ++i) {
    const ZnodeTree& tree = services[i]->tree();
    for (const auto& [path, expected] : oracle) {
      auto node = tree.Get(path);
      ASSERT_TRUE(node.ok()) << "replica " << i << " missing " << path;
      EXPECT_EQ(node->data, expected.first) << path;
      EXPECT_EQ(node->version, expected.second) << path;
    }
    for (const std::string& path : paths) {
      if (!oracle.contains(path)) {
        EXPECT_FALSE(tree.Exists(path)) << "replica " << i << " extra "
                                        << path;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaFuzzTest,
                         ::testing::Values(7, 14, 28, 56));

}  // namespace
}  // namespace ustore::consensus
