// Model-level tests for the sharded engine stack (DESIGN.md §12):
//
//   * fabric::ShardPlan partitioning of real topologies;
//   * hw::DiskStateArray timing equivalence against a real hw::Disk;
//   * obs::MergeSnapshots determinism;
//   * the determinism fuzz the issue calls for: chaos-style random
//     workloads through core::ShardedUnit at 1/2/4/8 shards and several
//     thread counts, asserting bit-identical reports (JSON + digest,
//     which embed the per-group metric JSON and trace digests) against
//     the single-queue oracle.
#include "core/sharded_unit.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"

#include "core/cluster.h"
#include "fabric/builders.h"
#include "fabric/shard_plan.h"
#include "gtest/gtest.h"
#include "hw/disk.h"
#include "hw/disk_soa.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace ustore {
namespace {

// --------------------------------------------------------------------------
// fabric::ShardPlan

TEST(ShardPlanTest, PartitionsPrototypeFabricByRootSubtree) {
  fabric::BuiltFabric built = fabric::BuildPrototypeFabric();
  fabric::ShardPlanOptions options;
  options.shards = 3;
  const fabric::ShardPlan plan = fabric::BuildShardPlan(built.topology, options);

  EXPECT_GT(plan.groups(), 0);
  EXPECT_EQ(plan.shards, 3);
  EXPECT_GT(plan.lookahead, 0);

  // Every attached disk belongs to a group and a shard.
  for (const fabric::NodeIndex disk : built.disks) {
    EXPECT_GE(plan.GroupOf(disk), 0) << built.topology.node(disk).name;
    EXPECT_GE(plan.ShardOf(disk), 0);
    EXPECT_LT(plan.ShardOf(disk), plan.shards);
  }
  // Host ports belong to no group.
  for (const fabric::NodeIndex port : built.host_ports) {
    EXPECT_EQ(plan.GroupOf(port), -1);
  }
  // A node shares its group with its subtree root.
  for (int g = 0; g < plan.groups(); ++g) {
    EXPECT_EQ(plan.GroupOf(plan.group_root[g]), g);
  }
  // Contiguous balanced assignment: non-decreasing, all shards used.
  std::vector<int> used(plan.shards, 0);
  for (int g = 1; g < plan.groups(); ++g) {
    EXPECT_GE(plan.group_shard[g], plan.group_shard[g - 1]);
  }
  for (int g = 0; g < plan.groups(); ++g) ++used[plan.group_shard[g]];
  for (int s = 0; s < plan.shards; ++s) EXPECT_GT(used[s], 0);
}

TEST(ShardPlanTest, DetachedSubtreeGetsNoGroup) {
  fabric::BuiltFabric built = fabric::BuildSingleHostTree({.disks = 8});
  // Fail one root hub: its disks dangle and must be unassigned.
  const fabric::NodeIndex hub = built.hubs.front();
  built.topology.SetFailed(hub, true);
  const fabric::ShardPlan plan =
      fabric::BuildShardPlan(built.topology, {.shards = 2});
  int unassigned = 0;
  for (const fabric::NodeIndex disk : built.disks) {
    if (plan.GroupOf(disk) < 0) ++unassigned;
  }
  EXPECT_GT(unassigned, 0);
  EXPECT_LT(unassigned, static_cast<int>(built.disks.size()));
}

TEST(ShardPlanTest, ShardCountClampsToGroups) {
  fabric::BuiltFabric built = fabric::BuildSingleHostTree({.disks = 4});
  const fabric::ShardPlan plan =
      fabric::BuildShardPlan(built.topology, {.shards = 64});
  EXPECT_LE(plan.shards, plan.groups());
  EXPECT_GE(plan.shards, 1);
}

TEST(ShardPlanTest, SingleRootFabricCollapsesToOneGroup) {
  // 4 disks at fan-in 4: one hub on one root port — a single root subtree,
  // so any requested shard count degenerates to serial.
  fabric::BuiltFabric built = fabric::BuildSingleHostTree({.disks = 4});
  const fabric::ShardPlan plan =
      fabric::BuildShardPlan(built.topology, {.shards = 4});
  EXPECT_EQ(plan.groups(), 1);
  EXPECT_EQ(plan.shards, 1);
  for (const fabric::NodeIndex disk : built.disks) {
    EXPECT_EQ(plan.GroupOf(disk), 0);
    EXPECT_EQ(plan.ShardOf(disk), 0);
  }
}

TEST(ShardPlanTest, MoreShardsThanGroupsPinsOneGroupPerShard) {
  fabric::BuiltFabric built = fabric::BuildPrototypeFabric();  // 4 subtrees
  const fabric::ShardPlan plan =
      fabric::BuildShardPlan(built.topology, {.shards = 64});
  EXPECT_EQ(plan.shards, plan.groups());
  for (int g = 0; g < plan.groups(); ++g) {
    EXPECT_EQ(plan.group_shard[g], g);
  }
}

TEST(ShardPlanTest, ZeroDelayLinksStillGetPositiveLookahead) {
  // A zero lookahead would let cross-shard deliveries land "now" and break
  // the conservative contract; the plan clamps the floor to 1 ns.
  fabric::BuiltFabric built = fabric::BuildPrototypeFabric();
  fabric::ShardPlanOptions options;
  options.shards = 2;
  options.rpc_floor = 0;
  options.usb_hop = 0;
  const fabric::ShardPlan plan =
      fabric::BuildShardPlan(built.topology, options);
  EXPECT_EQ(plan.lookahead, 1);
  EXPECT_EQ(plan.shards, 2);
}

// --------------------------------------------------------------------------
// hw::DiskStateArray vs hw::Disk: bit-exact batch drain schedules.

std::vector<hw::IoCompletion> DriveRealDisk(
    sim::Simulator& sim, hw::Disk& disk,
    const std::vector<hw::IoRequest>& requests) {
  std::vector<hw::IoCompletion> results;
  disk.SubmitBatch(requests,
                   [&](std::span<const hw::IoCompletion> completions) {
                     results.assign(completions.begin(), completions.end());
                   });
  sim.Run();
  return results;
}

TEST(DiskStateArrayTest, MatchesRealDiskOnIdleBatch) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  for (const std::uint64_t ops : {1ull, 2ull, 16ull, 48ull}) {
    sim::Simulator sim;
    hw::Disk disk(&sim, "ref", model, /*start_powered=*/true,
                  {.queue_capacity = 256, .max_batch = 32});
    hw::IoRequest shape{KiB(512), hw::IoDirection::kRead,
                        hw::AccessPattern::kSequential};
    const auto real = DriveRealDisk(
        sim, disk, std::vector<hw::IoRequest>(ops, shape));
    ASSERT_EQ(real.size(), ops);

    hw::DiskStateArray soa(&model, 1, /*idle_timeout=*/0);
    const auto out = soa.SubmitBatch(0, shape, ops, 0);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.spin_wait, 0);
    for (std::uint64_t k = 0; k < ops; ++k) {
      EXPECT_EQ(real[k].completed_at,
                out.first_completion +
                    static_cast<sim::Duration>(k) * out.steady_service)
          << "ops=" << ops << " k=" << k;
      EXPECT_EQ(real[k].service_ns,
                k == 0 ? out.first_service : out.steady_service);
    }
    EXPECT_EQ(real.back().completed_at, out.last_completion);
    EXPECT_EQ(soa.total_ios(), ops);
  }
}

TEST(DiskStateArrayTest, MatchesRealDiskAcrossDirectionSwitch) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  sim::Simulator sim;
  hw::Disk disk(&sim, "ref", model, true, {.queue_capacity = 256});
  hw::DiskStateArray soa(&model, 1, 0);

  const hw::IoRequest read{KiB(256), hw::IoDirection::kRead,
                           hw::AccessPattern::kRandom};
  const hw::IoRequest write{KiB(256), hw::IoDirection::kWrite,
                            hw::AccessPattern::kRandom};

  auto real1 = DriveRealDisk(sim, disk, std::vector<hw::IoRequest>(8, read));
  const auto soa1 = soa.SubmitBatch(0, read, 8, 0);
  ASSERT_EQ(real1.back().completed_at, soa1.last_completion);

  // Second batch flips direction: its first request pays the switch
  // penalty (previous direction read), the rest run steady-state.
  const sim::Time t2 = sim.now();
  auto real2 = DriveRealDisk(sim, disk, std::vector<hw::IoRequest>(8, write));
  const auto soa2 = soa.SubmitBatch(0, write, 8, t2);
  ASSERT_TRUE(soa2.accepted);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(real2[k].completed_at,
              soa2.first_completion + k * soa2.steady_service);
  }
  EXPECT_GT(soa2.first_service, soa2.steady_service);  // switch penalty
}

TEST(DiskStateArrayTest, MatchesRealDiskSpinUpCharge) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  sim::Simulator sim;
  hw::Disk disk(&sim, "ref", model, /*start_powered=*/false,
                {.queue_capacity = 256});
  disk.PowerOn();  // spun-down, platter stopped
  ASSERT_EQ(disk.state(), hw::DiskState::kSpunDown);

  hw::IoRequest shape{MiB(4), hw::IoDirection::kRead,
                      hw::AccessPattern::kSequential};
  const auto real = DriveRealDisk(sim, disk, std::vector<hw::IoRequest>(4, shape));

  hw::DiskStateArray soa(&model, 1, 0);
  // Walk the SoA disk to spun-down through its own lifecycle: one batch,
  // drain, idle timer, spin-down. Then resubmit from t=0 equivalent.
  hw::DiskStateArray staged(&model, 1, sim::Millis(1));
  const auto warm = staged.SubmitBatch(0, shape, 1, 0);
  const sim::Time deadline = staged.FinishDrain(0, warm.last_completion);
  ASSERT_GE(deadline, 0);
  ASSERT_TRUE(staged.MaybeSpinDown(0, deadline));
  ASSERT_EQ(staged.state(0), hw::DiskState::kSpunDown);

  const auto out = soa.SubmitBatch(0, shape, 4, 0);  // soa[0] is idle: no spin
  EXPECT_EQ(out.spin_wait, 0);
  const auto cold = staged.SubmitBatch(0, shape, 4, deadline);
  ASSERT_TRUE(cold.accepted);
  EXPECT_EQ(cold.spin_wait, model.disk().spin_up_time);
  EXPECT_EQ(staged.total_spin_cycles(), 1u);

  // The real disk charged the whole spin-up to the first request and
  // chained completions from the spin-up end; the SoA math must agree on
  // both (modulo the absolute submit time, which differs by `deadline`).
  ASSERT_EQ(real.size(), 4u);
  EXPECT_EQ(real[0].spin_ns, model.disk().spin_up_time);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(real[k].completed_at,
              (cold.first_completion - deadline) + k * cold.steady_service);
  }
}

TEST(DiskStateArrayTest, QueuedBatchChainsBehindDrain) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  sim::Simulator sim;
  hw::Disk disk(&sim, "ref", model, true, {.queue_capacity = 256});
  hw::DiskStateArray soa(&model, 1, 0);
  const hw::IoRequest shape{KiB(64), hw::IoDirection::kWrite,
                            hw::AccessPattern::kSequential};

  // Submit two batches back-to-back (second while the first drains).
  std::vector<hw::IoCompletion> first, second;
  disk.SubmitBatch(std::vector<hw::IoRequest>(4, shape),
                   [&](std::span<const hw::IoCompletion> c) {
                     first.assign(c.begin(), c.end());
                   });
  disk.SubmitBatch(std::vector<hw::IoRequest>(4, shape),
                   [&](std::span<const hw::IoCompletion> c) {
                     second.assign(c.begin(), c.end());
                   });
  sim.Run();

  const auto soa1 = soa.SubmitBatch(0, shape, 4, 0);
  const auto soa2 = soa.SubmitBatch(0, shape, 4, 0);  // busy: chains
  EXPECT_EQ(first.back().completed_at, soa1.last_completion);
  EXPECT_EQ(second.front().completed_at, soa2.first_completion);
  EXPECT_EQ(second.back().completed_at, soa2.last_completion);
  EXPECT_GE(soa2.first_completion, soa1.last_completion);

  // Drain bookkeeping: only the final drain returns the spindle to idle.
  EXPECT_EQ(soa.FinishDrain(0, soa1.last_completion), -1);
  EXPECT_EQ(soa.queue_depth(0), 1);
  soa.FinishDrain(0, soa2.last_completion);
  EXPECT_EQ(soa.state(0), hw::DiskState::kIdle);
}

TEST(DiskStateArrayTest, FailRepairLifecycle) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::DiskStateArray soa(&model, 2, 0);
  const hw::IoRequest shape{KiB(4), hw::IoDirection::kRead,
                            hw::AccessPattern::kSequential};
  soa.Fail(0);
  EXPECT_FALSE(soa.SubmitBatch(0, shape, 1, 0).accepted);
  EXPECT_TRUE(soa.SubmitBatch(1, shape, 1, 0).accepted);
  soa.Repair(0);
  EXPECT_EQ(soa.state(0), hw::DiskState::kSpunDown);
  const auto out = soa.SubmitBatch(0, shape, 1, 0);
  EXPECT_TRUE(out.accepted);
  EXPECT_EQ(out.spin_wait, model.disk().spin_up_time);
  EXPECT_GT(soa.TotalPower(), 0.0);
}

TEST(DiskStateArrayTest, AdaptiveIdleTimeoutMatchesRealDisk) {
  // §IV-F: spin-ups arriving within 4x the configured idle timeout of the
  // previous one double the effective timeout, capped at 64x. Drive a real
  // hw::Disk and the SoA mirror through identical spin cycles and require
  // identical schedules, spin-down instants and effective timeouts.
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  const sim::Duration timeout = sim::Seconds(4);
  sim::Simulator sim;
  hw::Disk disk(&sim, "ref", model, /*start_powered=*/false,
                {.queue_capacity = 256});
  disk.PowerOn();
  disk.SetIdleSpinDown(timeout);
  hw::DiskStateArray soa(&model, 1, timeout);
  soa.SeedState(0, hw::DiskState::kSpunDown, false);

  const hw::IoRequest shape{KiB(64), hw::IoDirection::kRead,
                            hw::AccessPattern::kSequential};
  std::vector<sim::Duration> effective;
  sim::Time submit_at = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    sim.RunUntil(submit_at);
    const auto real =
        DriveRealDisk(sim, disk, std::vector<hw::IoRequest>(2, shape));
    ASSERT_EQ(real.size(), 2u) << "cycle " << cycle;
    const auto out = soa.SubmitBatch(0, shape, 2, submit_at);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(real.front().completed_at, out.first_completion) << cycle;
    EXPECT_EQ(real.back().completed_at, out.last_completion) << cycle;

    const sim::Time deadline = soa.FinishDrain(0, out.last_completion);
    ASSERT_GE(deadline, 0) << cycle;
    EXPECT_TRUE(soa.MaybeSpinDown(0, deadline));
    // DriveRealDisk ran the sim dry: the real idle timer fired last, at
    // the instant the SoA deadline predicts, leaving the disk spun down.
    EXPECT_EQ(sim.now(), deadline) << cycle;
    EXPECT_EQ(disk.state(), hw::DiskState::kSpunDown) << cycle;
    EXPECT_EQ(disk.effective_idle_timeout(), soa.effective_idle_timeout(0))
        << cycle;
    effective.push_back(soa.effective_idle_timeout(0));
    submit_at = deadline + sim::Millis(1);
  }
  // 7s spin-up + 4s timeout: the second and third spin-ups land inside the
  // 16s window (doubling 4s -> 8s -> 16s); at 16s the cycle gap exceeds
  // the window and the back-off stops.
  EXPECT_EQ(effective[0], timeout);
  EXPECT_EQ(effective[1], 2 * timeout);
  EXPECT_EQ(effective[2], 4 * timeout);
  EXPECT_EQ(effective[3], 4 * timeout);
  EXPECT_EQ(effective[4], 4 * timeout);
}

TEST(DiskStateArrayTest, RangeEntryPointsMatchPerDiskLoop) {
  // The vectorized sweep path (SubmitBatchRange / FinishDrainRange /
  // SpinDownSweep) must evolve every disk bit-identically to a loop of the
  // per-disk calls — schedules, states, adaptive timeouts, aggregates.
  // (The model's obs call counters are exempt by the header contract.)
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  constexpr int kDisks = 32;
  constexpr int kWidth = 8;
  const sim::Duration timeout = sim::Millis(300);
  hw::DiskStateArray range_path(&model, kDisks, timeout);
  hw::DiskStateArray loop_path(&model, kDisks, timeout);
  for (int d = 0; d < kDisks; d += 5) {
    range_path.SeedState(d, hw::DiskState::kSpunDown, false);
    loop_path.SeedState(d, hw::DiskState::kSpunDown, false);
  }
  for (const int d : {3, 17}) {
    range_path.Fail(d);
    loop_path.Fail(d);
  }

  Rng rng(2026);
  sim::Time now = 0;
  for (int step = 0; step < 40; ++step) {
    const int first =
        static_cast<int>(rng.NextBelow(kDisks / kWidth)) * kWidth;
    const hw::IoRequest shape{
        KiB(64 << rng.NextBelow(3)),
        rng.NextBool(0.5) ? hw::IoDirection::kRead : hw::IoDirection::kWrite,
        rng.NextBool(0.5) ? hw::AccessPattern::kSequential
                          : hw::AccessPattern::kRandom};
    const std::uint64_t ops = 1 + rng.NextBelow(8);

    std::vector<hw::DiskStateArray::BatchOutcome> vec(kWidth);
    const auto range =
        range_path.SubmitBatchRange(first, kWidth, shape, ops, now, vec.data());
    int accepted = 0;
    sim::Time min_first = -1, max_last = -1;
    for (int d = first; d < first + kWidth; ++d) {
      const auto one = loop_path.SubmitBatch(d, shape, ops, now);
      const auto& two = vec[d - first];
      ASSERT_EQ(one.accepted, two.accepted) << "step " << step << " d " << d;
      if (!one.accepted) continue;
      EXPECT_EQ(one.first_completion, two.first_completion);
      EXPECT_EQ(one.last_completion, two.last_completion);
      EXPECT_EQ(one.first_service, two.first_service);
      EXPECT_EQ(one.steady_service, two.steady_service);
      EXPECT_EQ(one.spin_wait, two.spin_wait);
      ++accepted;
      if (min_first < 0 || one.first_completion < min_first) {
        min_first = one.first_completion;
      }
      max_last = std::max(max_last, one.last_completion);
    }
    EXPECT_EQ(range.accepted, accepted);
    EXPECT_EQ(range.rejected, kWidth - accepted);
    EXPECT_EQ(range.ops, static_cast<std::uint64_t>(accepted) * ops);
    EXPECT_EQ(range.first_completion, min_first);
    EXPECT_EQ(range.last_completion, max_last);

    if (range.last_completion >= 0) {
      // The range path retires the sweep with ONE drain event at the range
      // max; the per-disk path drains each disk at its own completion.
      // Idle deadlines (armed from each disk's own drain instant) and the
      // earliest-deadline summary must still agree.
      const sim::Time earliest =
          range_path.FinishDrainRange(first, kWidth, range.last_completion);
      sim::Time min_deadline = -1;
      for (int d = first; d < first + kWidth; ++d) {
        if (!vec[d - first].accepted) continue;
        const sim::Time dl =
            loop_path.FinishDrain(d, vec[d - first].last_completion);
        if (dl >= 0 && (min_deadline < 0 || dl < min_deadline)) {
          min_deadline = dl;
        }
      }
      EXPECT_EQ(earliest, min_deadline) << "step " << step;
      now = range.last_completion;
    }

    if (step % 3 == 2) {
      // Jump past every idle deadline: the range path fast-forwards with a
      // whole-array sweep, the per-disk path fires one timer per disk.
      now += 64 * timeout + sim::Seconds(1);
      const auto sweep = range_path.SpinDownSweep(0, kDisks, now);
      int spun = 0;
      for (int d = 0; d < kDisks; ++d) {
        if (loop_path.MaybeSpinDown(d, now)) ++spun;
      }
      EXPECT_EQ(sweep.spun_down, spun) << "step " << step;
      EXPECT_EQ(sweep.next_deadline, -1);
    } else {
      now += sim::Millis(static_cast<sim::Duration>(rng.NextBelow(50)));
    }

    for (int d = 0; d < kDisks; ++d) {
      ASSERT_EQ(range_path.state(d), loop_path.state(d))
          << "step " << step << " d " << d;
      EXPECT_EQ(range_path.effective_idle_timeout(d),
                loop_path.effective_idle_timeout(d));
    }
    EXPECT_EQ(range_path.total_ios(), loop_path.total_ios());
    EXPECT_EQ(range_path.total_bytes_read(), loop_path.total_bytes_read());
    EXPECT_EQ(range_path.total_bytes_written(),
              loop_path.total_bytes_written());
    EXPECT_EQ(range_path.total_spin_cycles(), loop_path.total_spin_cycles());
  }
  EXPECT_GT(range_path.total_spin_cycles(), 2u);  // lifecycle exercised
}

TEST(DiskStateArrayTest, RangeDrainChainsLikePerDisk) {
  // Two back-to-back sweeps on the same range: the second chains behind
  // the first's drain on both paths, and only the second drain arms the
  // idle timers.
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  constexpr int kWidth = 8;
  hw::DiskStateArray range_path(&model, kWidth, sim::Millis(100));
  hw::DiskStateArray loop_path(&model, kWidth, sim::Millis(100));
  const hw::IoRequest shape{KiB(128), hw::IoDirection::kWrite,
                            hw::AccessPattern::kSequential};

  std::vector<hw::DiskStateArray::BatchOutcome> v1(kWidth), v2(kWidth);
  const auto r1 = range_path.SubmitBatchRange(0, kWidth, shape, 4, 0,
                                              v1.data());
  const auto r2 = range_path.SubmitBatchRange(0, kWidth, shape, 4, 0,
                                              v2.data());
  EXPECT_GE(r2.first_completion, r1.last_completion);
  for (int d = 0; d < kWidth; ++d) {
    const auto one = loop_path.SubmitBatch(d, shape, 4, 0);
    const auto two = loop_path.SubmitBatch(d, shape, 4, 0);
    EXPECT_EQ(one.last_completion, v1[d].last_completion);
    EXPECT_EQ(two.first_completion, v2[d].first_completion);
    EXPECT_EQ(two.last_completion, v2[d].last_completion);
  }

  EXPECT_EQ(range_path.FinishDrainRange(0, kWidth, r1.last_completion), -1);
  const sim::Time armed =
      range_path.FinishDrainRange(0, kWidth, r2.last_completion);
  sim::Time min_deadline = -1;
  for (int d = 0; d < kWidth; ++d) {
    EXPECT_EQ(loop_path.FinishDrain(d, v1[d].last_completion), -1);
    const sim::Time dl = loop_path.FinishDrain(d, v2[d].last_completion);
    if (dl >= 0 && (min_deadline < 0 || dl < min_deadline)) min_deadline = dl;
  }
  EXPECT_EQ(armed, min_deadline);
  for (int d = 0; d < kWidth; ++d) {
    EXPECT_EQ(range_path.state(d), loop_path.state(d));
    EXPECT_EQ(range_path.queue_depth(d), 0);
  }
}

// --------------------------------------------------------------------------
// obs::MergeSnapshots

TEST(MergeSnapshotsTest, SumsCountersAndMergesHistograms) {
  obs::MetricsRegistry a, b;
  a.Increment("x.count", 3);
  b.Increment("x.count", 4);
  b.Increment("y.count", 1);
  a.Observe("x.lat_us", 10.0);
  a.Observe("x.lat_us", 20.0);
  b.Observe("x.lat_us", 1000.0);
  a.GetGauge("x.g").Set(1.0, 10);
  b.GetGauge("x.g").Set(2.0, 20);  // newer: wins

  const obs::MetricsSnapshot merged =
      obs::MergeSnapshots({a.Snapshot(), b.Snapshot()});
  EXPECT_EQ(merged.counters.at("x.count"), 7u);
  EXPECT_EQ(merged.counters.at("y.count"), 1u);
  const auto& h = merged.histograms.at("x.lat_us");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 1030.0);
  EXPECT_DOUBLE_EQ(h.min, 10.0);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_GT(h.p50, 0.0);
  EXPECT_DOUBLE_EQ(merged.gauges.at("x.g").value, 2.0);
  EXPECT_EQ(merged.gauges.at("x.g").samples.size(), 2u);

  // Pure function of the parts: merging twice is bit-identical.
  const obs::MetricsSnapshot again =
      obs::MergeSnapshots({a.Snapshot(), b.Snapshot()});
  EXPECT_EQ(again.counters, merged.counters);
}

// --------------------------------------------------------------------------
// The determinism fuzz: sharded engine vs single-queue oracle.

core::ShardedUnitOptions FuzzOptions(std::uint64_t seed, bool chaos) {
  core::ShardedUnitOptions options;
  options.groups = 8;
  options.disks_per_group = 4;
  options.seed = seed;
  options.duration = sim::Seconds(2);
  options.burst_period = sim::Millis(40);
  options.burst_ops = 16;
  options.request_size = KiB(256);
  options.report_period = sim::Millis(100);
  options.master_tick = sim::Millis(200);
  options.directive_every_ops = 512;
  options.idle_timeout = sim::Millis(300);
  options.fault_probability = chaos ? 0.05 : 0.0;
  return options;
}

TEST(ShardedUnitDeterminismTest, BitIdenticalAcrossShardAndThreadCounts) {
  for (const std::uint64_t seed : {7ull, 99ull}) {
    for (const bool chaos : {false, true}) {
      core::ShardedUnitOptions options = FuzzOptions(seed, chaos);
      options.shards = 1;
      const core::ShardedUnitReport oracle =
          core::RunShardedUnit(options, /*use_sharded=*/false);
      const std::string oracle_json = oracle.ToJson();
      ASSERT_GT(oracle.events_processed, 100u);
      ASSERT_GT(oracle.per_group[0].ops, 0u);

      for (const int shards : {1, 2, 4, 8}) {
        for (const int threads : {1, 4}) {
          core::ShardedUnitOptions run = FuzzOptions(seed, chaos);
          run.shards = shards;
          run.threads = threads;
          const core::ShardedUnitReport sharded =
              core::RunShardedUnit(run, /*use_sharded=*/true);
          EXPECT_EQ(sharded.ToJson(), oracle_json)
              << "seed=" << seed << " chaos=" << chaos
              << " shards=" << shards << " threads=" << threads;
          EXPECT_EQ(sharded.Digest(), oracle.Digest());
          EXPECT_EQ(sharded.events_processed, oracle.events_processed);
          for (int g = 0; g < options.groups; ++g) {
            EXPECT_EQ(sharded.per_group[g].trace_digest,
                      oracle.per_group[g].trace_digest)
                << "group " << g;
          }
        }
      }
    }
  }
}

TEST(ShardedUnitDeterminismTest, OracleMatchesItselfAtEmulatedShardCounts) {
  // The oracle emulates any shard count on one queue; the report must not
  // depend on the emulated count either.
  core::ShardedUnitOptions options = FuzzOptions(5, true);
  options.shards = 1;
  const std::string one = core::RunShardedUnit(options, false).ToJson();
  options.shards = 4;
  EXPECT_EQ(core::RunShardedUnit(options, false).ToJson(), one);
}

TEST(ShardedUnitTest, WorkloadActuallyExercisesTheModel) {
  core::ShardedUnitOptions options = FuzzOptions(11, true);
  options.shards = 4;
  options.threads = 2;
  const core::ShardedUnitReport report = core::RunShardedUnit(options, true);
  EXPECT_EQ(report.groups, 8);
  std::uint64_t ops = 0, spin_downs = 0, directives = 0, faults = 0;
  for (const auto& grp : report.per_group) {
    ops += grp.ops;
    spin_downs += grp.spin_downs;
    directives += grp.directives;
    faults += grp.faults;
    EXPECT_GT(grp.reports_sent, 0u);
    EXPECT_NE(grp.trace_digest, 0u);
  }
  EXPECT_GT(ops, 0u);
  EXPECT_GT(spin_downs, 0u);        // idle spin-down policy engaged
  EXPECT_GT(directives, 0u);        // master -> endpoint control traffic
  EXPECT_GT(faults, 0u);            // chaos injection ran
  EXPECT_GT(report.master_ticks, 0u);
  EXPECT_EQ(report.master_directives, directives);
  EXPECT_GT(report.merged.counters.at("unit.io.ops"), 0u);
}

TEST(ShardedUnitTest, ClusterExposesShardPlanForItsFabric) {
  core::ClusterOptions options;
  core::Cluster cluster(options);
  const fabric::ShardPlan plan = cluster.BuildShardPlan(2);
  EXPECT_GE(plan.groups(), 1);
  EXPECT_LE(plan.shards, std::max(plan.groups(), 1));
  EXPECT_GT(plan.lookahead, sim::Micros(200));  // rpc floor + usb hop
}

}  // namespace
}  // namespace ustore
