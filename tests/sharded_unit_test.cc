// Model-level tests for the sharded engine stack (DESIGN.md §12):
//
//   * fabric::ShardPlan partitioning of real topologies;
//   * hw::DiskStateArray timing equivalence against a real hw::Disk;
//   * obs::MergeSnapshots determinism;
//   * the determinism fuzz the issue calls for: chaos-style random
//     workloads through core::ShardedUnit at 1/2/4/8 shards and several
//     thread counts, asserting bit-identical reports (JSON + digest,
//     which embed the per-group metric JSON and trace digests) against
//     the single-queue oracle.
#include "core/sharded_unit.h"

#include <string>
#include <vector>

#include "core/cluster.h"
#include "fabric/builders.h"
#include "fabric/shard_plan.h"
#include "gtest/gtest.h"
#include "hw/disk.h"
#include "hw/disk_soa.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace ustore {
namespace {

// --------------------------------------------------------------------------
// fabric::ShardPlan

TEST(ShardPlanTest, PartitionsPrototypeFabricByRootSubtree) {
  fabric::BuiltFabric built = fabric::BuildPrototypeFabric();
  fabric::ShardPlanOptions options;
  options.shards = 3;
  const fabric::ShardPlan plan = fabric::BuildShardPlan(built.topology, options);

  EXPECT_GT(plan.groups(), 0);
  EXPECT_EQ(plan.shards, 3);
  EXPECT_GT(plan.lookahead, 0);

  // Every attached disk belongs to a group and a shard.
  for (const fabric::NodeIndex disk : built.disks) {
    EXPECT_GE(plan.GroupOf(disk), 0) << built.topology.node(disk).name;
    EXPECT_GE(plan.ShardOf(disk), 0);
    EXPECT_LT(plan.ShardOf(disk), plan.shards);
  }
  // Host ports belong to no group.
  for (const fabric::NodeIndex port : built.host_ports) {
    EXPECT_EQ(plan.GroupOf(port), -1);
  }
  // A node shares its group with its subtree root.
  for (int g = 0; g < plan.groups(); ++g) {
    EXPECT_EQ(plan.GroupOf(plan.group_root[g]), g);
  }
  // Contiguous balanced assignment: non-decreasing, all shards used.
  std::vector<int> used(plan.shards, 0);
  for (int g = 1; g < plan.groups(); ++g) {
    EXPECT_GE(plan.group_shard[g], plan.group_shard[g - 1]);
  }
  for (int g = 0; g < plan.groups(); ++g) ++used[plan.group_shard[g]];
  for (int s = 0; s < plan.shards; ++s) EXPECT_GT(used[s], 0);
}

TEST(ShardPlanTest, DetachedSubtreeGetsNoGroup) {
  fabric::BuiltFabric built = fabric::BuildSingleHostTree({.disks = 8});
  // Fail one root hub: its disks dangle and must be unassigned.
  const fabric::NodeIndex hub = built.hubs.front();
  built.topology.SetFailed(hub, true);
  const fabric::ShardPlan plan =
      fabric::BuildShardPlan(built.topology, {.shards = 2});
  int unassigned = 0;
  for (const fabric::NodeIndex disk : built.disks) {
    if (plan.GroupOf(disk) < 0) ++unassigned;
  }
  EXPECT_GT(unassigned, 0);
  EXPECT_LT(unassigned, static_cast<int>(built.disks.size()));
}

TEST(ShardPlanTest, ShardCountClampsToGroups) {
  fabric::BuiltFabric built = fabric::BuildSingleHostTree({.disks = 4});
  const fabric::ShardPlan plan =
      fabric::BuildShardPlan(built.topology, {.shards = 64});
  EXPECT_LE(plan.shards, plan.groups());
  EXPECT_GE(plan.shards, 1);
}

// --------------------------------------------------------------------------
// hw::DiskStateArray vs hw::Disk: bit-exact batch drain schedules.

std::vector<hw::IoCompletion> DriveRealDisk(
    sim::Simulator& sim, hw::Disk& disk,
    const std::vector<hw::IoRequest>& requests) {
  std::vector<hw::IoCompletion> results;
  disk.SubmitBatch(requests,
                   [&](std::span<const hw::IoCompletion> completions) {
                     results.assign(completions.begin(), completions.end());
                   });
  sim.Run();
  return results;
}

TEST(DiskStateArrayTest, MatchesRealDiskOnIdleBatch) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  for (const std::uint64_t ops : {1ull, 2ull, 16ull, 48ull}) {
    sim::Simulator sim;
    hw::Disk disk(&sim, "ref", model, /*start_powered=*/true,
                  {.queue_capacity = 256, .max_batch = 32});
    hw::IoRequest shape{KiB(512), hw::IoDirection::kRead,
                        hw::AccessPattern::kSequential};
    const auto real = DriveRealDisk(
        sim, disk, std::vector<hw::IoRequest>(ops, shape));
    ASSERT_EQ(real.size(), ops);

    hw::DiskStateArray soa(&model, 1, /*idle_timeout=*/0);
    const auto out = soa.SubmitBatch(0, shape, ops, 0);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.spin_wait, 0);
    for (std::uint64_t k = 0; k < ops; ++k) {
      EXPECT_EQ(real[k].completed_at,
                out.first_completion +
                    static_cast<sim::Duration>(k) * out.steady_service)
          << "ops=" << ops << " k=" << k;
      EXPECT_EQ(real[k].service_ns,
                k == 0 ? out.first_service : out.steady_service);
    }
    EXPECT_EQ(real.back().completed_at, out.last_completion);
    EXPECT_EQ(soa.total_ios(), ops);
  }
}

TEST(DiskStateArrayTest, MatchesRealDiskAcrossDirectionSwitch) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  sim::Simulator sim;
  hw::Disk disk(&sim, "ref", model, true, {.queue_capacity = 256});
  hw::DiskStateArray soa(&model, 1, 0);

  const hw::IoRequest read{KiB(256), hw::IoDirection::kRead,
                           hw::AccessPattern::kRandom};
  const hw::IoRequest write{KiB(256), hw::IoDirection::kWrite,
                            hw::AccessPattern::kRandom};

  auto real1 = DriveRealDisk(sim, disk, std::vector<hw::IoRequest>(8, read));
  const auto soa1 = soa.SubmitBatch(0, read, 8, 0);
  ASSERT_EQ(real1.back().completed_at, soa1.last_completion);

  // Second batch flips direction: its first request pays the switch
  // penalty (previous direction read), the rest run steady-state.
  const sim::Time t2 = sim.now();
  auto real2 = DriveRealDisk(sim, disk, std::vector<hw::IoRequest>(8, write));
  const auto soa2 = soa.SubmitBatch(0, write, 8, t2);
  ASSERT_TRUE(soa2.accepted);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(real2[k].completed_at,
              soa2.first_completion + k * soa2.steady_service);
  }
  EXPECT_GT(soa2.first_service, soa2.steady_service);  // switch penalty
}

TEST(DiskStateArrayTest, MatchesRealDiskSpinUpCharge) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  sim::Simulator sim;
  hw::Disk disk(&sim, "ref", model, /*start_powered=*/false,
                {.queue_capacity = 256});
  disk.PowerOn();  // spun-down, platter stopped
  ASSERT_EQ(disk.state(), hw::DiskState::kSpunDown);

  hw::IoRequest shape{MiB(4), hw::IoDirection::kRead,
                      hw::AccessPattern::kSequential};
  const auto real = DriveRealDisk(sim, disk, std::vector<hw::IoRequest>(4, shape));

  hw::DiskStateArray soa(&model, 1, 0);
  // Walk the SoA disk to spun-down through its own lifecycle: one batch,
  // drain, idle timer, spin-down. Then resubmit from t=0 equivalent.
  hw::DiskStateArray staged(&model, 1, sim::Millis(1));
  const auto warm = staged.SubmitBatch(0, shape, 1, 0);
  const sim::Time deadline = staged.FinishDrain(0, warm.last_completion);
  ASSERT_GE(deadline, 0);
  ASSERT_TRUE(staged.MaybeSpinDown(0, deadline));
  ASSERT_EQ(staged.state(0), hw::DiskState::kSpunDown);

  const auto out = soa.SubmitBatch(0, shape, 4, 0);  // soa[0] is idle: no spin
  EXPECT_EQ(out.spin_wait, 0);
  const auto cold = staged.SubmitBatch(0, shape, 4, deadline);
  ASSERT_TRUE(cold.accepted);
  EXPECT_EQ(cold.spin_wait, model.disk().spin_up_time);
  EXPECT_EQ(staged.total_spin_cycles(), 1u);

  // The real disk charged the whole spin-up to the first request and
  // chained completions from the spin-up end; the SoA math must agree on
  // both (modulo the absolute submit time, which differs by `deadline`).
  ASSERT_EQ(real.size(), 4u);
  EXPECT_EQ(real[0].spin_ns, model.disk().spin_up_time);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(real[k].completed_at,
              (cold.first_completion - deadline) + k * cold.steady_service);
  }
}

TEST(DiskStateArrayTest, QueuedBatchChainsBehindDrain) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  sim::Simulator sim;
  hw::Disk disk(&sim, "ref", model, true, {.queue_capacity = 256});
  hw::DiskStateArray soa(&model, 1, 0);
  const hw::IoRequest shape{KiB(64), hw::IoDirection::kWrite,
                            hw::AccessPattern::kSequential};

  // Submit two batches back-to-back (second while the first drains).
  std::vector<hw::IoCompletion> first, second;
  disk.SubmitBatch(std::vector<hw::IoRequest>(4, shape),
                   [&](std::span<const hw::IoCompletion> c) {
                     first.assign(c.begin(), c.end());
                   });
  disk.SubmitBatch(std::vector<hw::IoRequest>(4, shape),
                   [&](std::span<const hw::IoCompletion> c) {
                     second.assign(c.begin(), c.end());
                   });
  sim.Run();

  const auto soa1 = soa.SubmitBatch(0, shape, 4, 0);
  const auto soa2 = soa.SubmitBatch(0, shape, 4, 0);  // busy: chains
  EXPECT_EQ(first.back().completed_at, soa1.last_completion);
  EXPECT_EQ(second.front().completed_at, soa2.first_completion);
  EXPECT_EQ(second.back().completed_at, soa2.last_completion);
  EXPECT_GE(soa2.first_completion, soa1.last_completion);

  // Drain bookkeeping: only the final drain returns the spindle to idle.
  EXPECT_EQ(soa.FinishDrain(0, soa1.last_completion), -1);
  EXPECT_EQ(soa.queue_depth(0), 1);
  soa.FinishDrain(0, soa2.last_completion);
  EXPECT_EQ(soa.state(0), hw::DiskState::kIdle);
}

TEST(DiskStateArrayTest, FailRepairLifecycle) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::DiskStateArray soa(&model, 2, 0);
  const hw::IoRequest shape{KiB(4), hw::IoDirection::kRead,
                            hw::AccessPattern::kSequential};
  soa.Fail(0);
  EXPECT_FALSE(soa.SubmitBatch(0, shape, 1, 0).accepted);
  EXPECT_TRUE(soa.SubmitBatch(1, shape, 1, 0).accepted);
  soa.Repair(0);
  EXPECT_EQ(soa.state(0), hw::DiskState::kSpunDown);
  const auto out = soa.SubmitBatch(0, shape, 1, 0);
  EXPECT_TRUE(out.accepted);
  EXPECT_EQ(out.spin_wait, model.disk().spin_up_time);
  EXPECT_GT(soa.TotalPower(), 0.0);
}

// --------------------------------------------------------------------------
// obs::MergeSnapshots

TEST(MergeSnapshotsTest, SumsCountersAndMergesHistograms) {
  obs::MetricsRegistry a, b;
  a.Increment("x.count", 3);
  b.Increment("x.count", 4);
  b.Increment("y.count", 1);
  a.Observe("x.lat_us", 10.0);
  a.Observe("x.lat_us", 20.0);
  b.Observe("x.lat_us", 1000.0);
  a.GetGauge("x.g").Set(1.0, 10);
  b.GetGauge("x.g").Set(2.0, 20);  // newer: wins

  const obs::MetricsSnapshot merged =
      obs::MergeSnapshots({a.Snapshot(), b.Snapshot()});
  EXPECT_EQ(merged.counters.at("x.count"), 7u);
  EXPECT_EQ(merged.counters.at("y.count"), 1u);
  const auto& h = merged.histograms.at("x.lat_us");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 1030.0);
  EXPECT_DOUBLE_EQ(h.min, 10.0);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_GT(h.p50, 0.0);
  EXPECT_DOUBLE_EQ(merged.gauges.at("x.g").value, 2.0);
  EXPECT_EQ(merged.gauges.at("x.g").samples.size(), 2u);

  // Pure function of the parts: merging twice is bit-identical.
  const obs::MetricsSnapshot again =
      obs::MergeSnapshots({a.Snapshot(), b.Snapshot()});
  EXPECT_EQ(again.counters, merged.counters);
}

// --------------------------------------------------------------------------
// The determinism fuzz: sharded engine vs single-queue oracle.

core::ShardedUnitOptions FuzzOptions(std::uint64_t seed, bool chaos) {
  core::ShardedUnitOptions options;
  options.groups = 8;
  options.disks_per_group = 4;
  options.seed = seed;
  options.duration = sim::Seconds(2);
  options.burst_period = sim::Millis(40);
  options.burst_ops = 16;
  options.request_size = KiB(256);
  options.report_period = sim::Millis(100);
  options.master_tick = sim::Millis(200);
  options.directive_every_ops = 512;
  options.idle_timeout = sim::Millis(300);
  options.fault_probability = chaos ? 0.05 : 0.0;
  return options;
}

TEST(ShardedUnitDeterminismTest, BitIdenticalAcrossShardAndThreadCounts) {
  for (const std::uint64_t seed : {7ull, 99ull}) {
    for (const bool chaos : {false, true}) {
      core::ShardedUnitOptions options = FuzzOptions(seed, chaos);
      options.shards = 1;
      const core::ShardedUnitReport oracle =
          core::RunShardedUnit(options, /*use_sharded=*/false);
      const std::string oracle_json = oracle.ToJson();
      ASSERT_GT(oracle.events_processed, 100u);
      ASSERT_GT(oracle.per_group[0].ops, 0u);

      for (const int shards : {1, 2, 4, 8}) {
        for (const int threads : {1, 4}) {
          core::ShardedUnitOptions run = FuzzOptions(seed, chaos);
          run.shards = shards;
          run.threads = threads;
          const core::ShardedUnitReport sharded =
              core::RunShardedUnit(run, /*use_sharded=*/true);
          EXPECT_EQ(sharded.ToJson(), oracle_json)
              << "seed=" << seed << " chaos=" << chaos
              << " shards=" << shards << " threads=" << threads;
          EXPECT_EQ(sharded.Digest(), oracle.Digest());
          EXPECT_EQ(sharded.events_processed, oracle.events_processed);
          for (int g = 0; g < options.groups; ++g) {
            EXPECT_EQ(sharded.per_group[g].trace_digest,
                      oracle.per_group[g].trace_digest)
                << "group " << g;
          }
        }
      }
    }
  }
}

TEST(ShardedUnitDeterminismTest, OracleMatchesItselfAtEmulatedShardCounts) {
  // The oracle emulates any shard count on one queue; the report must not
  // depend on the emulated count either.
  core::ShardedUnitOptions options = FuzzOptions(5, true);
  options.shards = 1;
  const std::string one = core::RunShardedUnit(options, false).ToJson();
  options.shards = 4;
  EXPECT_EQ(core::RunShardedUnit(options, false).ToJson(), one);
}

TEST(ShardedUnitTest, WorkloadActuallyExercisesTheModel) {
  core::ShardedUnitOptions options = FuzzOptions(11, true);
  options.shards = 4;
  options.threads = 2;
  const core::ShardedUnitReport report = core::RunShardedUnit(options, true);
  EXPECT_EQ(report.groups, 8);
  std::uint64_t ops = 0, spin_downs = 0, directives = 0, faults = 0;
  for (const auto& grp : report.per_group) {
    ops += grp.ops;
    spin_downs += grp.spin_downs;
    directives += grp.directives;
    faults += grp.faults;
    EXPECT_GT(grp.reports_sent, 0u);
    EXPECT_NE(grp.trace_digest, 0u);
  }
  EXPECT_GT(ops, 0u);
  EXPECT_GT(spin_downs, 0u);        // idle spin-down policy engaged
  EXPECT_GT(directives, 0u);        // master -> endpoint control traffic
  EXPECT_GT(faults, 0u);            // chaos injection ran
  EXPECT_GT(report.master_ticks, 0u);
  EXPECT_EQ(report.master_directives, directives);
  EXPECT_GT(report.merged.counters.at("unit.io.ops"), 0u);
}

TEST(ShardedUnitTest, ClusterExposesShardPlanForItsFabric) {
  core::ClusterOptions options;
  core::Cluster cluster(options);
  const fabric::ShardPlan plan = cluster.BuildShardPlan(2);
  EXPECT_GE(plan.groups(), 1);
  EXPECT_LE(plan.shards, std::max(plan.groups(), 1));
  EXPECT_GT(plan.lookahead, sim::Micros(200));  // rpc floor + usb hop
}

}  // namespace
}  // namespace ustore
