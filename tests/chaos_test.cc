// Chaos harness tests (DESIGN.md §10).
//
// Two load-bearing properties:
//
//  * Determinism — a ChaosPlan and the full ChaosReport it produces
//    (every sim-time stamp included) are pure functions of (cluster seed,
//    plan seed). The bit-identical test re-runs a whole chaotic cluster
//    lifetime and compares the canonical JSON byte for byte.
//
//  * Recovery coverage — every single-fault scenario that
//    baselines::AnalyzeSingleFaultCoverage enumerates for the prototype
//    fabric (each host, each hub failure unit) is driven through a live
//    cluster and must recover within its deadline with zero invariant
//    violations.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/baselines.h"
#include "core/cluster.h"
#include "fabric/builders.h"
#include "fabric/failure_domains.h"
#include "services/chaos.h"
#include "services/redundancy.h"

namespace ustore::services {
namespace {

ChaosPlan SingleFaultPlan(FaultKind kind, const std::string& target,
                          int index, sim::Duration heal_after) {
  ChaosPlan plan;
  plan.seed = 1;
  FaultOp fault;
  fault.at = sim::Seconds(5);
  fault.kind = kind;
  fault.target = target;
  fault.index = index;
  FaultOp heal = fault;
  heal.kind = HealKindFor(kind);
  heal.at = fault.at + heal_after;
  plan.ops.push_back(fault);
  plan.ops.push_back(heal);
  return plan;
}

// Runs one fault+heal plan against a fresh default (prototype, 4-host /
// 16-disk) cluster and returns the report.
ChaosReport RunSingleFault(FaultKind kind, const std::string& target,
                           int index) {
  core::Cluster cluster;
  cluster.Start();
  ChaosEngine engine(&cluster);
  Status prepared = engine.Prepare();
  EXPECT_TRUE(prepared.ok()) << prepared.ToString();
  if (!prepared.ok()) return engine.report();
  engine.Arm(SingleFaultPlan(kind, target, index, sim::Seconds(15)));
  return engine.RunToCompletion(sim::Seconds(300));
}

TEST(ChaosKinds, EveryDestructiveKindHasAHealAndAName) {
  const FaultKind destructive[] = {
      FaultKind::kDiskFail,        FaultKind::kDiskPowerLoss,
      FaultKind::kUnitFail,        FaultKind::kHostCrash,
      FaultKind::kControllerCrash, FaultKind::kMasterCrash,
      FaultKind::kMetaCrash,       FaultKind::kPartition,
      FaultKind::kRpcDelay,
  };
  for (FaultKind kind : destructive) {
    EXPECT_TRUE(IsDestructive(kind));
    const FaultKind heal = HealKindFor(kind);
    EXPECT_FALSE(IsDestructive(heal));
    EXPECT_NE(FaultKindName(kind), "unknown");
    EXPECT_NE(FaultKindName(heal), "unknown");
    // The heal op keys the same window as the fault it undoes.
    FaultOp fault{.at = 0, .kind = kind, .target = "x", .index = 3};
    FaultOp undo = fault;
    undo.kind = heal;
    EXPECT_EQ(fault.WindowKey(), undo.WindowKey());
  }
}

TEST(ChaosPlan, GenerationIsDeterministicAndPairsHeals) {
  core::Cluster cluster;
  cluster.Start();
  PlanOptions options;
  options.faults = 12;
  const ChaosPlan a = GeneratePlan(cluster, 77, options);
  const ChaosPlan b = GeneratePlan(cluster, 77, options);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  ASSERT_EQ(a.ops.size(), 24u);  // every fault paired with its heal
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].at, b.ops[i].at);
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].Describe(), b.ops[i].Describe());
  }
  for (std::size_t i = 0; i + 1 < a.ops.size(); i += 2) {
    const FaultOp& fault = a.ops[i];
    const FaultOp& heal = a.ops[i + 1];
    EXPECT_TRUE(IsDestructive(fault.kind)) << fault.Describe();
    EXPECT_EQ(heal.kind, HealKindFor(fault.kind));
    EXPECT_EQ(heal.WindowKey(), fault.WindowKey());
    EXPECT_GT(heal.at, fault.at);
  }
  // A different seed must not reproduce the same schedule.
  const ChaosPlan c = GeneratePlan(cluster, 78, options);
  bool differs = false;
  for (std::size_t i = 0; i < c.ops.size(); ++i) {
    if (c.ops[i].at != a.ops[i].at ||
        c.ops[i].Describe() != a.ops[i].Describe()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

// The headline determinism contract: a whole chaotic cluster lifetime —
// elections, failovers, remounts, probe traffic — replayed from the same
// seeds produces a byte-identical report.
TEST(ChaosEngineTest, FixedSeedReportIsBitIdentical) {
  auto run = [] {
    core::Cluster cluster;
    cluster.Start();
    ChaosEngine engine(&cluster);
    Status prepared = engine.Prepare();
    EXPECT_TRUE(prepared.ok()) << prepared.ToString();
    PlanOptions options;
    options.faults = 5;
    options.heal_after = sim::Seconds(15);
    options.settle_after = sim::Seconds(20);
    engine.Arm(GeneratePlan(cluster, 4242, options));
    return engine.RunToCompletion(sim::Seconds(600)).ToJson();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ChaosEngineTest, SeededPlanRecoversEveryFaultWithoutViolations) {
  core::Cluster cluster;
  cluster.Start();
  ChaosEngine engine(&cluster);
  ASSERT_TRUE(engine.Prepare().ok());
  PlanOptions options;
  options.faults = 6;
  options.heal_after = sim::Seconds(15);
  options.settle_after = sim::Seconds(20);
  engine.Arm(GeneratePlan(cluster, 99, options));
  const ChaosReport& report = engine.RunToCompletion(sim::Seconds(900));
  EXPECT_TRUE(engine.finished());
  EXPECT_EQ(report.faults_injected, 6);
  ASSERT_EQ(report.faults.size(), 6u);
  for (const FaultRecord& fault : report.faults) {
    EXPECT_TRUE(fault.deadline_ok) << fault.fault;
    EXPECT_GE(fault.recovery, 0) << fault.fault;
    EXPECT_LE(fault.recovery, fault.deadline) << fault.fault;
  }
  EXPECT_EQ(report.invariant_violations, 0)
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_GT(report.probe_writes_acked, 0);
  EXPECT_GT(report.probe_reads_verified, 0);
  EXPECT_GE(report.RecoveryPercentile(1.0), report.RecoveryPercentile(0.5));
}

// Every scenario AnalyzeSingleFaultCoverage enumerates for the prototype
// fabric, driven through a live cluster: host scenarios as whole-host
// crashes (tolerated — recovery measured from injection), hub scenarios as
// failure-unit faults (repair-class — measured from the heal). Each must
// recover in-deadline with zero violations; this is the dynamic
// counterpart of the static routability analysis.
TEST(ChaosEngineTest, SingleFaultCoverageScenariosAllRecover) {
  const baselines::FaultCoverage coverage =
      baselines::AnalyzeSingleFaultCoverage(
          [] { return fabric::BuildPrototypeFabric(); });
  ASSERT_FALSE(coverage.scenarios.empty());

  const fabric::BuiltFabric reference = fabric::BuildPrototypeFabric();
  for (const baselines::FaultScenario& scenario : coverage.scenarios) {
    int host_index = -1;
    for (std::size_t h = 0; h < reference.hosts.size(); ++h) {
      if (reference.hosts[h] == scenario.failed_component) {
        host_index = static_cast<int>(h);
      }
    }
    const ChaosReport report =
        host_index >= 0
            ? RunSingleFault(FaultKind::kHostCrash, "", host_index)
            : RunSingleFault(FaultKind::kUnitFail, scenario.failed_component,
                             -1);
    ASSERT_EQ(report.faults.size(), 1u) << scenario.failed_component;
    EXPECT_TRUE(report.faults[0].deadline_ok)
        << scenario.failed_component << ": " << report.faults[0].recovery
        << " ns";
    EXPECT_EQ(report.invariant_violations, 0)
        << scenario.failed_component << ": "
        << (report.violations.empty() ? "" : report.violations.front());
  }
}

TEST(ChaosEngineTest, ActiveMasterCrashFailsOverToStandby) {
  core::Cluster cluster;
  cluster.Start();
  int active = -1;
  for (int i = 0; i < cluster.master_count(); ++i) {
    if (cluster.master(i) == cluster.active_master()) active = i;
  }
  ASSERT_GE(active, 0);
  ChaosEngine engine(&cluster);
  ASSERT_TRUE(engine.Prepare().ok());
  engine.Arm(SingleFaultPlan(FaultKind::kMasterCrash, "", active,
                             sim::Seconds(15)));
  const ChaosReport& report = engine.RunToCompletion(sim::Seconds(300));
  ASSERT_EQ(report.faults.size(), 1u);
  EXPECT_TRUE(report.faults[0].deadline_ok);
  EXPECT_EQ(report.invariant_violations, 0);
  // The standby took over (recovery requires an active master).
  EXPECT_NE(cluster.active_master(), cluster.master(active));
}

// A chaos fault interrupting a declustered rebuild mid-flight is expected
// behaviour, not data loss — as long as the engine's report leaves an
// exact restart point. This drives a real RebuildEngine run into a unit
// fault, feeds the interrupted report through the chaos invariant checker
// (no violation), proves the run resumes to completion after repair, and
// finally checks that a *tampered* report does trip the invariant.
TEST(ChaosRebuild, InterruptedRebuildIsResumableNotLost) {
  constexpr Bytes kChunk = MiB(16);
  constexpr int kData = 2;
  constexpr int kParity = 1;
  constexpr int kWidth = kData + kParity;
  constexpr int kStripes = 8;  // busiest layout disk gets >= 2 chunks
  constexpr std::uint64_t kGenBase = 4400;

  core::Cluster cluster;
  cluster.Start();
  auto client = cluster.MakeClient("chaos-rebuild-client");

  // Every chunk and spare lives on ONE volume on one disk, so failing that
  // disk's unit interrupts whatever the engine has in flight.
  const fabric::FailureDomainMap domains =
      fabric::EnumerateFailureDomains(cluster.fabric().fabric());
  ASSERT_GE(domains.size(), 1);
  const std::string data_disk = domains.domains[0].disk_names[0];
  Result<core::ClientLib::Volume*> mounted = InternalError("pending");
  client->AllocateAndMountOnDisk(
      "rebuild-pool", GiB(1), data_disk,
      [&](Result<core::ClientLib::Volume*> r) { mounted = r; });
  cluster.RunFor(sim::Seconds(10));
  ASSERT_TRUE(mounted.ok()) << mounted.status();
  core::ClientLib::Volume* pool = *mounted;

  const auto chunk_offset = [](std::uint64_t stripe, int chunk) {
    return (static_cast<Bytes>(stripe) * kWidth + chunk) * kChunk;
  };
  const auto spare_offset = [](std::uint64_t stripe) {
    return (static_cast<Bytes>(kStripes) * kWidth + stripe) * kChunk;
  };
  int acked = 0;
  for (int s = 0; s < kStripes; ++s) {
    for (int c = 0; c < kWidth; ++c) {
      pool->Write(chunk_offset(s, c), kChunk, /*random=*/false,
                  redundancy::ChunkTag(kGenBase + s, c), [&](Status status) {
                    EXPECT_TRUE(status.ok()) << status;
                    ++acked;
                  });
    }
  }
  cluster.RunFor(sim::Seconds(60));
  ASSERT_EQ(acked, kStripes * kWidth);

  fabric::PlacementOptions placement;
  placement.data_chunks = kData;
  placement.parity_chunks = kParity;
  placement.seed = 91;
  redundancy::StripeMap map(placement);
  map.layout().AddDomains(4, 4);
  ASSERT_TRUE(map.AppendMany(kStripes).ok());
  int failed_disk = 0;
  for (int d = 1; d < map.layout().disks(); ++d) {
    if (map.ChunksOnDisk(d).size() > map.ChunksOnDisk(failed_disk).size()) {
      failed_disk = d;
    }
  }
  Result<redundancy::RebuildPlan> plan =
      redundancy::PlanRebuild(map, failed_disk, /*apply=*/true);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const int ops = static_cast<int>(plan->ops.size());
  ASSERT_GT(ops, 1);
  std::map<std::uint64_t, int> lost;
  for (const redundancy::RebuildStripeOp& op : plan->ops) {
    lost[op.stripe] = op.lost_chunk;
  }
  const auto resolver = [&](std::uint64_t stripe, int chunk,
                            const fabric::ChunkLocation&) {
    const auto it = lost.find(stripe);
    const Bytes offset = it != lost.end() && chunk == it->second
                             ? spare_offset(stripe)
                             : chunk_offset(stripe, chunk);
    return RebuildEngine::ChunkAddress{pool, offset};
  };
  RebuildEngineOptions options;
  options.chunk_size = kChunk;
  options.max_stripes_in_flight = 1;  // in-order completion
  options.total_disks = map.layout().disks();

  ChaosEngine chaos(&cluster);

  // Run the engine and yank the disk's failure unit mid-rebuild.
  RebuildEngine engine(&cluster.sim(), &map, options, resolver);
  RebuildEngineReport report;
  report.status = InternalError("pending");
  bool done = false;
  engine.Execute(*plan, [&](RebuildEngineReport r) {
    report = r;
    done = true;
  });
  cluster.sim().Schedule(sim::MillisD(700), [&] {
    EXPECT_TRUE(cluster.fabric().FailUnit(data_disk).ok());
  });
  cluster.RunFor(sim::Seconds(300));
  ASSERT_TRUE(done);
  ASSERT_FALSE(report.status.ok());
  EXPECT_LT(report.stripes_rebuilt, ops);
  EXPECT_GE(report.resume_from, 0);
  EXPECT_LT(report.resume_from, ops);

  // The invariant checker accepts the interrupted report as resumable.
  chaos.NoteRebuildInterrupted(report);
  EXPECT_EQ(chaos.report().invariant_violations, 0);

  // Repair, remount, resume from the reported op: the rebuild completes.
  ASSERT_TRUE(cluster.fabric().RepairUnit(data_disk).ok());
  cluster.RunFor(sim::Seconds(60));
  RebuildEngine resumed_engine(&cluster.sim(), &map, options, resolver);
  RebuildEngineReport resumed;
  resumed.status = InternalError("pending");
  done = false;
  resumed_engine.ExecuteFrom(report.resume_from, *plan,
                             [&](RebuildEngineReport r) {
                               resumed = r;
                               done = true;
                             });
  cluster.RunFor(sim::Seconds(300));
  ASSERT_TRUE(done);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status;
  EXPECT_EQ(resumed.stripes_rebuilt, ops - report.resume_from);
  EXPECT_EQ(resumed.resume_from, ops);
  for (const redundancy::RebuildStripeOp& op : plan->ops) {
    Result<std::uint64_t> tag = InternalError("pending");
    pool->Read(spare_offset(op.stripe), kChunk, /*random=*/false,
               [&](Result<std::uint64_t> r) { tag = r; });
    cluster.RunFor(sim::Seconds(10));
    ASSERT_TRUE(tag.ok()) << tag.status();
    EXPECT_EQ(*tag, redundancy::ChunkTag(kGenBase + op.stripe,
                                         op.lost_chunk));
  }

  // A doctored report (no restart point) IS an invariant violation.
  RebuildEngineReport bogus = report;
  bogus.resume_from = -1;
  chaos.NoteRebuildInterrupted(bogus);
  EXPECT_EQ(chaos.report().invariant_violations, 1);
}

TEST(ChaosReportTest, PercentilesOnEmptyReportAreSentinel) {
  ChaosReport report;
  EXPECT_EQ(report.RecoveryPercentile(0.5), -1);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"faults_injected\":0"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
}

}  // namespace
}  // namespace ustore::services
