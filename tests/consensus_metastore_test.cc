#include <gtest/gtest.h>

#include <algorithm>

#include "consensus/metastore.h"

namespace ustore::consensus {
namespace {

MetaOp CreateOp(const std::string& path, const std::string& data = "",
                bool ephemeral = false, std::uint64_t session = 0) {
  MetaOp op;
  op.kind = MetaOp::Kind::kCreate;
  op.path = path;
  op.data = data;
  op.ephemeral = ephemeral;
  op.session = session;
  return op;
}

MetaOp SetOp(const std::string& path, const std::string& data,
             std::int64_t version = kAnyVersion) {
  MetaOp op;
  op.kind = MetaOp::Kind::kSet;
  op.path = path;
  op.data = data;
  op.expected_version = version;
  return op;
}

MetaOp DeleteOp(const std::string& path,
                std::int64_t version = kAnyVersion) {
  MetaOp op;
  op.kind = MetaOp::Kind::kDelete;
  op.path = path;
  op.expected_version = version;
  return op;
}

// --- Codec ---------------------------------------------------------------------

TEST(MetaOpCodecTest, RoundTrip) {
  MetaOp op;
  op.kind = MetaOp::Kind::kCreate;
  op.path = "/units/u0/disks";
  op.data = std::string("binary\0data:with:colons", 23);
  op.ephemeral = true;
  op.session = 42;
  op.expected_version = -1;
  op.ttl_ms = 6000;

  auto decoded = DecodeOp(EncodeOp(op));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, op.kind);
  EXPECT_EQ(decoded->path, op.path);
  EXPECT_EQ(decoded->data, op.data);
  EXPECT_EQ(decoded->ephemeral, op.ephemeral);
  EXPECT_EQ(decoded->session, op.session);
  EXPECT_EQ(decoded->expected_version, op.expected_version);
  EXPECT_EQ(decoded->ttl_ms, op.ttl_ms);
}

TEST(MetaOpCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeOp("").ok());
  EXPECT_FALSE(DecodeOp("hello").ok());
  EXPECT_FALSE(DecodeOp("9999:trunc").ok());
}

TEST(MetaOpCodecTest, EmptyFieldsRoundTrip) {
  MetaOp op;
  auto decoded = DecodeOp(EncodeOp(op));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, MetaOp::Kind::kNoOp);
  EXPECT_TRUE(decoded->path.empty());
}

// --- ZnodeTree -------------------------------------------------------------------

class ZnodeTreeTest : public ::testing::Test {
 protected:
  ApplyEffect Apply(const MetaOp& op, double now = 0.0) {
    return tree_.Apply(op, now);
  }
  ZnodeTree tree_;
};

TEST_F(ZnodeTreeTest, RootExists) {
  EXPECT_TRUE(tree_.Exists("/"));
  EXPECT_EQ(tree_.node_count(), 1u);
}

TEST_F(ZnodeTreeTest, CreateAndGet) {
  auto effect = Apply(CreateOp("/a", "hello"));
  EXPECT_TRUE(effect.status.ok());
  EXPECT_EQ(effect.touched, std::vector<std::string>{"/a"});
  EXPECT_EQ(effect.children_changed, std::vector<std::string>{"/"});

  auto node = tree_.Get("/a");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->data, "hello");
  EXPECT_EQ(node->version, 0u);
}

TEST_F(ZnodeTreeTest, CreateRejectsDuplicates) {
  EXPECT_TRUE(Apply(CreateOp("/a")).status.ok());
  EXPECT_EQ(Apply(CreateOp("/a")).status.code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ZnodeTreeTest, CreateRequiresParent) {
  EXPECT_EQ(Apply(CreateOp("/a/b")).status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Apply(CreateOp("/a")).status.ok());
  EXPECT_TRUE(Apply(CreateOp("/a/b")).status.ok());
}

TEST_F(ZnodeTreeTest, RejectsMalformedPaths) {
  for (const std::string& path :
       {"", "a", "/a/", "//", "/a//b", "/"}) {
    EXPECT_FALSE(Apply(CreateOp(path)).status.ok()) << "path=" << path;
  }
}

TEST_F(ZnodeTreeTest, SetBumpsVersion) {
  Apply(CreateOp("/a", "v0"));
  EXPECT_TRUE(Apply(SetOp("/a", "v1")).status.ok());
  auto node = tree_.Get("/a");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->data, "v1");
  EXPECT_EQ(node->version, 1u);
}

TEST_F(ZnodeTreeTest, GuardedSetChecksVersion) {
  Apply(CreateOp("/a", "v0"));
  EXPECT_EQ(Apply(SetOp("/a", "bad", 3)).status.code(),
            StatusCode::kConflict);
  EXPECT_TRUE(Apply(SetOp("/a", "good", 0)).status.ok());
  EXPECT_TRUE(Apply(SetOp("/a", "better", 1)).status.ok());
}

TEST_F(ZnodeTreeTest, DeleteRequiresEmptyAndMatchingVersion) {
  Apply(CreateOp("/a"));
  Apply(CreateOp("/a/b"));
  EXPECT_EQ(Apply(DeleteOp("/a")).status.code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Apply(DeleteOp("/a/b", 5)).status.code(), StatusCode::kConflict);
  EXPECT_TRUE(Apply(DeleteOp("/a/b", 0)).status.ok());
  EXPECT_TRUE(Apply(DeleteOp("/a")).status.ok());
  EXPECT_FALSE(tree_.Exists("/a"));
}

TEST_F(ZnodeTreeTest, GetChildrenListsDirectOnly) {
  Apply(CreateOp("/a"));
  Apply(CreateOp("/a/b"));
  Apply(CreateOp("/a/c"));
  Apply(CreateOp("/a/b2"));
  Apply(CreateOp("/a/b/deep"));
  auto children = tree_.GetChildren("/a");
  EXPECT_EQ(children,
            (std::vector<std::string>{"/a/b", "/a/b2", "/a/c"}));
  EXPECT_EQ(tree_.GetChildren("/").size(), 1u);
}

TEST_F(ZnodeTreeTest, SessionsAndEphemerals) {
  MetaOp create_session;
  create_session.kind = MetaOp::Kind::kCreateSession;
  create_session.ttl_ms = 5000;
  auto effect = Apply(create_session, 1.0);
  ASSERT_NE(effect.created_session, 0u);
  const std::uint64_t session = effect.created_session;

  Apply(CreateOp("/hosts"));
  EXPECT_TRUE(
      Apply(CreateOp("/hosts/h1", "alive", true, session)).status.ok());

  // Ephemerals cannot have children.
  EXPECT_EQ(Apply(CreateOp("/hosts/h1/x")).status.code(),
            StatusCode::kFailedPrecondition);

  // Expiry removes the ephemeral.
  MetaOp expire;
  expire.kind = MetaOp::Kind::kExpireSession;
  expire.session = session;
  auto expire_effect = Apply(expire, 10.0);
  EXPECT_TRUE(expire_effect.status.ok());
  EXPECT_FALSE(tree_.Exists("/hosts/h1"));
  EXPECT_FALSE(tree_.SessionAlive(session));
  EXPECT_EQ(expire_effect.expired_sessions,
            std::vector<std::uint64_t>{session});
  ASSERT_FALSE(expire_effect.children_changed.empty());
  EXPECT_EQ(expire_effect.children_changed[0], "/hosts");
}

TEST_F(ZnodeTreeTest, EphemeralCreateRequiresLiveSession) {
  Apply(CreateOp("/hosts"));
  EXPECT_EQ(Apply(CreateOp("/hosts/h1", "", true, 999)).status.code(),
            StatusCode::kNotFound);
}

TEST_F(ZnodeTreeTest, KeepAliveRefreshesSession) {
  MetaOp create_session;
  create_session.kind = MetaOp::Kind::kCreateSession;
  create_session.ttl_ms = 5000;
  const std::uint64_t session = Apply(create_session, 1.0).created_session;

  MetaOp keepalive;
  keepalive.kind = MetaOp::Kind::kKeepAlive;
  keepalive.session = session;
  EXPECT_TRUE(Apply(keepalive, 3.0).status.ok());
  auto sessions = tree_.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(sessions[0].last_seen_seconds, 3.0);

  // Keepalive for an expired session reports NotFound.
  keepalive.session = 999;
  EXPECT_EQ(Apply(keepalive, 3.0).status.code(), StatusCode::kNotFound);
}

TEST_F(ZnodeTreeTest, DeterministicReplay) {
  // Two trees fed the same op sequence end up identical.
  std::vector<MetaOp> ops = {
      CreateOp("/a", "1"), CreateOp("/a/b", "2"), SetOp("/a", "3"),
      CreateOp("/c"),      DeleteOp("/a/b"),      SetOp("/c", "4"),
  };
  ZnodeTree one, two;
  for (const auto& op : ops) {
    one.Apply(op, 0.0);
    two.Apply(op, 0.0);
  }
  EXPECT_EQ(one.node_count(), two.node_count());
  EXPECT_EQ(one.Get("/a")->data, two.Get("/a")->data);
  EXPECT_EQ(one.Get("/c")->version, two.Get("/c")->version);
}

}  // namespace
}  // namespace ustore::consensus
