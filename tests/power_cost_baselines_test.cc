// Validates the analytic models against the paper's Tables I, III, IV, V
// and the fault-tolerance claims of §III-A.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "cost/cost_model.h"
#include "power/power_model.h"

namespace ustore {
namespace {

// --- Table III: one-disk power ------------------------------------------------

TEST(PowerTest, TableIIISataRow) {
  auto row = power::SataDiskPower();
  EXPECT_NEAR(row.spin_down, 0.05, 0.01);
  EXPECT_NEAR(row.idle, 4.71, 0.01);
  EXPECT_NEAR(row.read_write, 6.66, 0.01);
}

TEST(PowerTest, TableIIIUsbRow) {
  auto row = power::UsbDiskPower();
  EXPECT_NEAR(row.spin_down, 1.56, 0.01);
  EXPECT_NEAR(row.idle, 5.76, 0.01);
  EXPECT_NEAR(row.read_write, 7.56, 0.01);
}

// --- Table IV: hub power --------------------------------------------------------

TEST(PowerTest, TableIVHubPower) {
  power::ComponentPower c;
  const double expected[] = {0.21, 1.06, 1.23, 1.47, 1.67};
  for (int devices = 0; devices <= 4; ++devices) {
    EXPECT_NEAR(power::HubPower(c, devices), expected[devices], 0.05)
        << devices << " devices";
  }
}

// --- Table V: 16-disk system power ----------------------------------------------

TEST(PowerTest, TableVSpinning) {
  const double ustore =
      power::UStorePower(16, power::SystemState::kSpinning).total;
  const double pergamum =
      power::PergamumPower(16, power::SystemState::kSpinning).total;
  const double dd860 =
      power::Dd860Es30Power(power::SystemState::kSpinning).total;
  EXPECT_NEAR(ustore, 166.8, 167.0 * 0.05);
  EXPECT_NEAR(pergamum, 193.5, 193.5 * 0.05);
  EXPECT_NEAR(dd860, 222.5, 0.1);
  // The ordering is the table's claim.
  EXPECT_LT(ustore, pergamum);
  EXPECT_LT(pergamum, dd860);
}

TEST(PowerTest, TableVPoweredOff) {
  const double ustore =
      power::UStorePower(16, power::SystemState::kPoweredOff).total;
  const double pergamum =
      power::PergamumPower(16, power::SystemState::kPoweredOff).total;
  const double dd860 =
      power::Dd860Es30Power(power::SystemState::kPoweredOff).total;
  EXPECT_NEAR(ustore, 22.1, 22.1 * 0.12);
  EXPECT_NEAR(pergamum, 28.9, 28.9 * 0.06);
  EXPECT_NEAR(dd860, 83.5, 0.1);
  EXPECT_LT(ustore, pergamum);
  EXPECT_LT(pergamum, dd860);
}

TEST(PowerTest, FabricPowersDownMostOfItself) {
  // §VII-C: "the interconnect fabric consumes about 71% less power" when
  // the disks are off.
  const auto on = power::UStorePower(16, power::SystemState::kSpinning);
  const auto off = power::UStorePower(16, power::SystemState::kPoweredOff);
  EXPECT_LT(off.interconnect, on.interconnect * 0.4);
}

TEST(PowerTest, MeterIntegratesEnergy) {
  power::PowerMeter meter;
  meter.Sample(0, 100.0);
  meter.Sample(sim::Seconds(10), 50.0);
  meter.Sample(sim::Seconds(20), 0.0);
  EXPECT_DOUBLE_EQ(meter.total_energy(), 100.0 * 10 + 50.0 * 10);
  EXPECT_DOUBLE_EQ(meter.average_power(), 75.0);
}

// --- Table I: cost ----------------------------------------------------------------

TEST(CostTest, TableOneMatchesPaper) {
  // Paper values in thousands: CapEx / AttEx.
  struct Expected {
    const char* system;
    double capex_k;
    double attex_k;
  };
  const Expected expected[] = {
      {"DELL PowerVault MD3260i", 3340, 1525},
      {"Sun StorageTek SL150", 1748, -1},
      {"Pergamum", 756, 415},
      {"BACKBLAZE", 598, 257},
      {"UStore", 456, 115},
  };
  auto table = cost::TableOne();
  ASSERT_EQ(table.size(), 5u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table[i].system, expected[i].system);
    EXPECT_NEAR(table[i].total / 1000.0, expected[i].capex_k,
                expected[i].capex_k * 0.05)
        << table[i].system;
    if (expected[i].attex_k >= 0) {
      EXPECT_NEAR(table[i].attach_cost / 1000.0, expected[i].attex_k,
                  expected[i].attex_k * 0.06)
          << table[i].system;
    }
  }
}

TEST(CostTest, UStoreCheapestOnBothAxes) {
  auto ustore = cost::UStoreCost(PB(10));
  auto backblaze = cost::BackblazeCost(PB(10));
  // §VI: "UStore costs 24% lower than BACKBLAZE... Excluding the disk
  // cost, UStore is 55% cheaper."
  EXPECT_NEAR(1.0 - ustore.total / backblaze.total, 0.24, 0.03);
  EXPECT_NEAR(1.0 - ustore.attach_cost / backblaze.attach_cost, 0.55, 0.04);
}

TEST(CostTest, ScalesLinearlyWithCapacity) {
  auto at_10 = cost::UStoreCost(PB(10));
  auto at_20 = cost::UStoreCost(PB(20));
  EXPECT_NEAR(at_20.total / at_10.total, 2.0, 0.01);
}

TEST(CostTest, FabricCostFollowsBom) {
  fabric::FabricBom small{4, 4, 8, 2};
  fabric::FabricBom big{8, 8, 16, 4};
  EXPECT_LT(cost::FabricCost(small), cost::FabricCost(big));
}

TEST(CostTest, RightDesignFabricCheaperThanLeft) {
  // Ablation A1: Fig. 2 right (high-level switching) needs fewer parts.
  auto right = fabric::CountBom(fabric::BuildPrototypeFabric());
  auto left =
      fabric::CountBom(fabric::BuildLeafSwitchedFabric({.disks = 16}));
  EXPECT_LT(cost::FabricCost(right), cost::FabricCost(left));
}

// --- Baselines -----------------------------------------------------------------------

TEST(BaselinesTest, BackblazeNicBottleneck) {
  baselines::BackblazePodModel pod;
  hw::DiskModel disk(hw::DiskParams{}, hw::SataInterface());
  hw::WorkloadSpec spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
  // One disk already saturates the GbE NIC.
  EXPECT_NEAR(ToMBps(pod.AggregateThroughput(disk, spec, 1)), 118.0, 1.0);
  EXPECT_NEAR(ToMBps(pod.AggregateThroughput(disk, spec, 45)), 118.0, 1.0);
}

TEST(BaselinesTest, PergamumCpuBottleneck) {
  baselines::PergamumTomeModel tome;
  hw::DiskModel disk(hw::DiskParams{}, hw::SataInterface());
  hw::WorkloadSpec spec{MiB(4), 1.0, hw::AccessPattern::kSequential};
  EXPECT_NEAR(ToMBps(tome.TomeThroughput(disk, spec)), 20.0, 0.1);
  // But tomes scale out linearly.
  EXPECT_NEAR(ToMBps(tome.AggregateThroughput(disk, spec, 16)), 320.0, 1.0);
}

TEST(BaselinesTest, FaultCoveragePlainTreeLosesWholeHub) {
  auto coverage = baselines::AnalyzeSingleFaultCoverage(
      [] { return fabric::BuildSingleHostTree({.disks = 16}); });
  // Host failure loses everything; each hub failure loses its 4 disks.
  EXPECT_EQ(coverage.worst_case_lost, 16);
  EXPECT_EQ(coverage.fully_tolerated, 0);
}

TEST(BaselinesTest, FaultCoverageLeafSwitchedToleratesEverything) {
  // §III-A: the left design tolerates any single hub or host failure.
  auto coverage = baselines::AnalyzeSingleFaultCoverage(
      [] { return fabric::BuildLeafSwitchedFabric({.disks = 16}); });
  EXPECT_EQ(coverage.fully_tolerated,
            static_cast<int>(coverage.scenarios.size()));
  EXPECT_EQ(coverage.worst_case_lost, 0);
}

TEST(BaselinesTest, FaultCoveragePrototypeToleratesHostsAndMidHubs) {
  auto coverage = baselines::AnalyzeSingleFaultCoverage(
      [] { return fabric::BuildPrototypeFabric(); });
  // 4 host scenarios + 4 mid-hub scenarios tolerated; 4 leaf-hub
  // scenarios lose exactly their 4 disks (§IV-E trade-off).
  EXPECT_EQ(coverage.scenarios.size(), 12u);
  EXPECT_EQ(coverage.fully_tolerated, 8);
  EXPECT_EQ(coverage.worst_case_lost, 4);
}

}  // namespace
}  // namespace ustore
