#include <gtest/gtest.h>

#include <map>

#include "hw/microcontroller.h"

namespace ustore::hw {
namespace {

class McuTest : public ::testing::Test {
 protected:
  McuTest()
      : bus_(8),
        primary_("mcu-a", 8, &bus_),
        secondary_("mcu-b", 8, &bus_) {
    bus_.set_observer(
        [this](int line, bool value) { changes_[line] = value; });
    primary_.PowerOn();
  }

  XorSignalBus bus_;
  Microcontroller primary_;
  Microcontroller secondary_;
  std::map<int, bool> changes_;
};

TEST_F(McuTest, PrimaryDrivesLinesDirectly) {
  ASSERT_TRUE(primary_.SetOutput(3, true).ok());
  EXPECT_TRUE(bus_.line(3));
  EXPECT_FALSE(bus_.line(2));
  EXPECT_TRUE(changes_.at(3));
}

TEST_F(McuTest, UnpoweredBoardCannotSet) {
  Status s = secondary_.SetOutput(0, true);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(McuTest, OutOfRangeLineRejected) {
  EXPECT_EQ(primary_.SetOutput(8, true).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(primary_.SetOutput(-1, true).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(McuTest, SecondaryPowerOnLeavesLinesUnchanged) {
  // The crucial XOR property (§III-B): the standby board powers on with
  // all-zero outputs, so the effective line values do not glitch.
  ASSERT_TRUE(primary_.SetOutput(1, true).ok());
  ASSERT_TRUE(primary_.SetOutput(5, true).ok());
  changes_.clear();

  secondary_.PowerOn();
  EXPECT_TRUE(changes_.empty());
  EXPECT_TRUE(bus_.line(1));
  EXPECT_TRUE(bus_.line(5));
  EXPECT_FALSE(bus_.line(0));
}

TEST_F(McuTest, SecondaryCanToggleLinesAfterTakeover) {
  ASSERT_TRUE(primary_.SetOutput(2, true).ok());
  secondary_.PowerOn();
  // Secondary toggles line 2 off and line 4 on by raising its own bits.
  ASSERT_TRUE(secondary_.SetOutput(2, true).ok());  // 1 XOR 1 = 0
  ASSERT_TRUE(secondary_.SetOutput(4, true).ok());  // 0 XOR 1 = 1
  EXPECT_FALSE(bus_.line(2));
  EXPECT_TRUE(bus_.line(4));
}

TEST_F(McuTest, PrimaryPowerLossFlipsItsLinesToZeroContribution) {
  // If the primary's power is cut, its outputs drop and lines revert to
  // the secondary's view — modelling the electrical behaviour.
  ASSERT_TRUE(primary_.SetOutput(1, true).ok());
  secondary_.PowerOn();
  ASSERT_TRUE(secondary_.SetOutput(6, true).ok());
  primary_.PowerOff();
  EXPECT_FALSE(bus_.line(1));  // was primary's
  EXPECT_TRUE(bus_.line(6));   // secondary still drives it
}

TEST_F(McuTest, PowerCycleResetsOutputs) {
  ASSERT_TRUE(primary_.SetOutput(1, true).ok());
  primary_.PowerOff();
  primary_.PowerOn();
  EXPECT_FALSE(bus_.line(1));
  EXPECT_FALSE(primary_.output(1));
}

TEST_F(McuTest, RedundantSetIsIdempotent) {
  ASSERT_TRUE(primary_.SetOutput(0, true).ok());
  changes_.clear();
  ASSERT_TRUE(primary_.SetOutput(0, true).ok());
  EXPECT_TRUE(changes_.empty());
}

}  // namespace
}  // namespace ustore::hw
