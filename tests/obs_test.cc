#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace ustore::obs {
namespace {

// Every test starts from a clean global registry/trace buffer: they are
// process-wide singletons shared across the whole binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics().Clear();
    Tracer().Clear();
    BindSimulator(nullptr);
  }
  void TearDown() override {
    Metrics().Clear();
    Tracer().Clear();
    BindSimulator(nullptr);
  }
};

TEST_F(ObsTest, CounterIncrements) {
  Metrics().Increment("test.counter");
  Metrics().Increment("test.counter", 4);
  EXPECT_EQ(Metrics().GetCounter("test.counter").value(), 5u);
}

TEST_F(ObsTest, HistogramStats) {
  Histogram h({10, 20, 50});
  for (double v : {1.0, 12.0, 30.0, 100.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 143.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 35.75);
}

TEST_F(ObsTest, HistogramQuantilesInterpolate) {
  Histogram h({10, 20, 50});
  // 100 samples uniform in (0, 10]: every quantile stays inside bucket 0.
  for (int i = 1; i <= 100; ++i) h.Record(i * 0.1);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, 10.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
}

TEST_F(ObsTest, HistogramOverflowBucketClampsToMax) {
  Histogram h({10});
  h.Record(1000);
  h.Record(2000);
  EXPECT_LE(h.Quantile(0.99), 2000.0);
  EXPECT_GE(h.Quantile(0.99), 1000.0);
}

TEST_F(ObsTest, SnapshotAndResetSemantics) {
  sim::Simulator sim;
  BindSimulator(&sim);
  sim.Schedule(sim::Seconds(3), [] {
    Metrics().Increment("test.ops", 7);
    Metrics().SetGauge("test.state", 2.0);
    Metrics().Observe("test.latency_us", 42.0);
  });
  sim.Run();

  MetricsSnapshot snapshot = Metrics().Snapshot(/*reset=*/true);
  EXPECT_EQ(snapshot.at, sim::Seconds(3));
  EXPECT_EQ(snapshot.counters.at("test.ops"), 7u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("test.state").value, 2.0);
  ASSERT_EQ(snapshot.gauges.at("test.state").samples.size(), 1u);
  EXPECT_EQ(snapshot.gauges.at("test.state").samples[0].at, sim::Seconds(3));
  EXPECT_EQ(snapshot.histograms.at("test.latency_us").count, 1u);

  // After a resetting snapshot: counters zero, histograms empty, gauge
  // trail cleared but last value retained.
  MetricsSnapshot after = Metrics().Snapshot();
  EXPECT_EQ(after.counters.at("test.ops"), 0u);
  EXPECT_EQ(after.histograms.at("test.latency_us").count, 0u);
  EXPECT_DOUBLE_EQ(after.gauges.at("test.state").value, 2.0);
  EXPECT_TRUE(after.gauges.at("test.state").samples.empty());
}

TEST_F(ObsTest, LoggerWritesFeedLevelCounters) {
  Metrics();  // ensure the observer hook is installed
  USTORE_LOG(Warning) << "obs_test warning";
  USTORE_LOG(Error) << "obs_test error";
  EXPECT_GE(Metrics().GetCounter("log.warnings").value(), 1u);
  EXPECT_GE(Metrics().GetCounter("log.errors").value(), 1u);
}

TEST_F(ObsTest, TraceSpanLifecycle) {
  sim::Simulator sim;
  BindSimulator(&sim);
  SpanId span = kInvalidSpan;
  sim.Schedule(sim::Seconds(1), [&] {
    span = Tracer().Begin("unit", "op");
    Tracer().Annotate(span, "key", "value");
  });
  sim.Schedule(sim::Seconds(2), [&] { Tracer().End(span); });
  sim.Run();

  ASSERT_EQ(Tracer().completed_count(), 1u);
  const TraceSpan done = Tracer().CompletedInOrder().front();
  EXPECT_EQ(done.component, "unit");
  EXPECT_EQ(done.name, "op");
  EXPECT_EQ(done.start, sim::Seconds(1));
  EXPECT_EQ(done.end, sim::Seconds(2));
  EXPECT_EQ(done.duration(), sim::Seconds(1));
  ASSERT_EQ(done.attrs.size(), 1u);
  EXPECT_EQ(done.attrs[0].first, "key");
  EXPECT_EQ(done.attrs[0].second, "value");
}

TEST_F(ObsTest, TraceBufferEvictsOldestWhenFull) {
  TraceBuffer buffer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    buffer.Record("unit", "op" + std::to_string(i), i, i + 1);
  }
  EXPECT_EQ(buffer.completed_count(), 4u);
  EXPECT_EQ(buffer.dropped(), 6u);
  // The survivors are the newest four.
  const std::vector<TraceSpan> spans = buffer.CompletedInOrder();
  EXPECT_EQ(spans.front().name, "op6");
  EXPECT_EQ(spans.back().name, "op9");
}

TEST_F(ObsTest, TimelineIsSortedBySimTime) {
  TraceBuffer buffer;
  buffer.Record("b", "second", sim::Seconds(2), sim::Seconds(3));
  buffer.Record("a", "first", sim::Seconds(1), sim::Seconds(4));
  const std::string timeline = FormatTimeline(buffer);
  const auto first = timeline.find("first");
  const auto second = timeline.find("second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST_F(ObsTest, MetricHandlesCacheAndIncrement) {
  CounterHandle ops("handle.ops");
  ops.Increment();
  ops.Increment(4);
  EXPECT_EQ(Metrics().GetCounter("handle.ops").value(), 5u);

  GaugeHandle state("handle.state");
  state.Set(2.5);
  EXPECT_DOUBLE_EQ(Metrics().GetGauge("handle.state").value(), 2.5);

  HistogramHandle lat("handle.latency_us");
  lat.Observe(10.0);
  lat.Observe(20.0);
  EXPECT_EQ(Metrics().GetHistogram("handle.latency_us").count(), 2u);
}

TEST_F(ObsTest, MetricHandlesSurviveRegistryClear) {
  // Handles cache a pointer into the registry; Clear() invalidates it via
  // the registry generation, so a stale handle re-resolves instead of
  // writing through a dangling pointer.
  CounterHandle ops("handle.ops");
  ops.Increment(3);
  Metrics().Clear();
  ops.Increment(2);
  EXPECT_EQ(Metrics().GetCounter("handle.ops").value(), 2u);

  GaugeHandle state("handle.state");
  state.Set(1.0);
  Metrics().Clear();
  state.Set(7.0);
  EXPECT_DOUBLE_EQ(Metrics().GetGauge("handle.state").value(), 7.0);

  HistogramHandle lat("handle.latency_us");
  lat.Observe(5.0);
  Metrics().Clear();
  lat.Observe(9.0);
  EXPECT_EQ(Metrics().GetHistogram("handle.latency_us").count(), 1u);
}

TEST_F(ObsTest, DumpJsonContainsEveryKind) {
  Metrics().Increment("test.ops");
  Metrics().SetGauge("test.state", 1.0);
  Metrics().Observe("test.latency_us", 5.0);
  const std::string json = DumpJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(ObsTest, EmptyHistogramQuantileIsNaN) {
  Histogram h({10, 20, 50});
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.Quantile(0.99)));
  h.Record(15.0);
  EXPECT_FALSE(std::isnan(h.Quantile(0.5)));
  // NaN quantiles must still render as valid JSON.
  Metrics().GetHistogram("test.empty_hist");
  const std::string json = DumpJson();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
}

TEST_F(ObsTest, TraceContextPropagation) {
  TraceBuffer buffer;
  const SpanId root = buffer.Begin("client", "read");
  const TraceContext ctx = buffer.ContextFor(root);
  EXPECT_TRUE(ctx.active());
  EXPECT_EQ(ctx.trace_id, root);
  EXPECT_EQ(ctx.parent, root);

  const SpanId child = buffer.Begin("rpc", "call", ctx);
  const TraceContext child_ctx = buffer.ContextFor(child);
  EXPECT_EQ(child_ctx.trace_id, root);  // same tree
  EXPECT_EQ(child_ctx.parent, child);

  const SpanId grandchild = buffer.Begin("disk:d0", "io", child_ctx);
  buffer.End(grandchild);
  buffer.End(child);
  buffer.End(root);

  const std::vector<TraceSpan> spans = buffer.CompletedInOrder();
  ASSERT_EQ(spans.size(), 3u);
  for (const TraceSpan& span : spans) EXPECT_EQ(span.trace_id, root);
  EXPECT_EQ(spans[0].parent, child);       // grandchild completed first
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, kInvalidSpan);
}

TEST_F(ObsTest, DisabledTracerDropsEverything) {
  TraceBuffer buffer;
  buffer.set_enabled(false);
  EXPECT_EQ(buffer.Begin("unit", "op"), kInvalidSpan);
  buffer.Record("unit", "op", 1, 2);
  EXPECT_EQ(buffer.completed_count(), 0u);
  EXPECT_FALSE(buffer.ContextFor(kInvalidSpan).active());
  buffer.set_enabled(true);
  const SpanId span = buffer.Begin("unit", "op");
  EXPECT_NE(span, kInvalidSpan);
  buffer.End(span);
  EXPECT_EQ(buffer.completed_count(), 1u);
}

TEST_F(ObsTest, HeadSamplingKeepsWholeTreesDeterministically) {
  // 1-in-4 sampling: roots 0, 4, 8, ... are recorded with ALL their
  // descendants; the other trees vanish entirely — head sampling never
  // produces a partial tree, and a repeat run samples the same roots.
  for (int run = 0; run < 2; ++run) {
    TraceBuffer buffer;
    buffer.set_sample_every(4);
    std::vector<SpanId> roots;
    for (int i = 0; i < 8; ++i) {
      const SpanId root = buffer.Begin("client", "read");
      const SpanId child = buffer.Begin("rpc", "call", buffer.ContextFor(root));
      const SpanId leaf =
          buffer.Begin("disk:d0", "io", buffer.ContextFor(child));
      if (i % 4 == 0) {
        EXPECT_GT(root, kUnsampledSpan) << "root " << i;
        EXPECT_GT(leaf, kUnsampledSpan) << "root " << i;
      } else {
        EXPECT_EQ(root, kUnsampledSpan) << "root " << i;
        // The suppressed root's context still marks the tree, so the
        // descendants are suppressed too instead of becoming new roots.
        EXPECT_EQ(child, kUnsampledSpan) << "root " << i;
        EXPECT_EQ(leaf, kUnsampledSpan) << "root " << i;
      }
      buffer.End(leaf);
      buffer.End(child);
      buffer.End(root);
      if (root != kUnsampledSpan) roots.push_back(root);
    }
    ASSERT_EQ(roots.size(), 2u);
    const std::vector<TraceSpan> spans = buffer.CompletedInOrder();
    ASSERT_EQ(spans.size(), 6u);  // 2 sampled trees x 3 spans
    for (const TraceSpan& span : spans) {
      EXPECT_TRUE(span.trace_id == roots[0] || span.trace_id == roots[1]);
    }
    // Operations on the sentinel are harmless no-ops.
    buffer.Annotate(kUnsampledSpan, "k", "v");
    buffer.End(kUnsampledSpan);
    EXPECT_EQ(buffer.completed_count(), 6u);
  }
}

TEST_F(ObsTest, EmitWritesClosedSpanStraightToRing) {
  TraceBuffer buffer(2);
  const SpanId parent = buffer.Begin("disk:d0", "io_batch");
  const SpanId first =
      buffer.Emit("disk:d0", "io", 10, 25, buffer.ContextFor(parent),
                  {{"dir", "read"}, {"size", 4096}, {"service_ns", 15}});
  EXPECT_GT(first, kUnsampledSpan);
  EXPECT_EQ(buffer.open_count(), 1u);  // only the parent; Emit skips the slab
  ASSERT_EQ(buffer.completed_count(), 1u);
  const TraceSpan got = buffer.CompletedInOrder()[0];
  EXPECT_EQ(got.trace_id, parent);
  EXPECT_EQ(got.parent, parent);
  EXPECT_EQ(got.start, 10);
  EXPECT_EQ(got.end, 25);
  ASSERT_EQ(got.attrs.size(), 3u);
  EXPECT_EQ(got.attrs[0].second, "read");
  EXPECT_EQ(got.attrs[1], (std::pair<std::string, std::string>{"size", "4096"}));
  EXPECT_EQ(got.attrs[2].second, "15");

  // Recycling: fill past capacity and check eviction accounting + that the
  // recycled slot's attrs are fully overwritten (fewer attrs than evicted).
  buffer.Emit("disk:d0", "io", 30, 40, buffer.ContextFor(parent),
              {{"dir", "write"}, {"size", 8192}, {"service_ns", 7}});
  const SpanId third =
      buffer.Emit("disk:d0", "io", 50, 60, buffer.ContextFor(parent), {});
  EXPECT_EQ(buffer.dropped(), 1u);
  const std::vector<TraceSpan> spans = buffer.CompletedInOrder();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].id, third);
  EXPECT_TRUE(spans[1].attrs.empty());
}

// Extracts every `"key": value` integer field from a JSON dump.
std::vector<std::uint64_t> JsonIds(const std::string& json, const char* key) {
  std::vector<std::uint64_t> out;
  const std::string needle = std::string("\"") + key + "\": ";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtoull(json.c_str() + pos, nullptr, 10));
  }
  return out;
}

TEST_F(ObsTest, EvictionLeavesExportedForestValid) {
  // Chains of parent->child spans where eviction removes parents: every
  // surviving span whose parent was evicted must be re-rooted (parent 0) in
  // the export, never left dangling.
  TraceBuffer buffer(/*capacity=*/6);
  for (int tree = 0; tree < 5; ++tree) {
    const sim::Time base = tree * 10;
    const SpanId root = buffer.StartAt("client", "read", base);
    const SpanId mid =
        buffer.StartAt("rpc", "call", base + 1, buffer.ContextFor(root));
    const SpanId leaf =
        buffer.StartAt("disk:d0", "io", base + 2, buffer.ContextFor(mid));
    buffer.EndAt(leaf, base + 3);
    buffer.EndAt(mid, base + 4);
    buffer.EndAt(root, base + 5);
  }
  EXPECT_EQ(buffer.completed_count(), 6u);
  EXPECT_EQ(buffer.dropped(), 9u);

  const std::string json = DumpTraceJson(buffer);
  const std::vector<std::uint64_t> ids = JsonIds(json, "id");
  const std::vector<std::uint64_t> parents = JsonIds(json, "parent");
  ASSERT_EQ(ids.size(), 6u);
  ASSERT_EQ(parents.size(), 6u);
  for (std::uint64_t parent : parents) {
    if (parent == 0) continue;
    EXPECT_NE(std::find(ids.begin(), ids.end(), parent), ids.end())
        << "dangling parent id " << parent << " in export";
  }
  // At least one span was actually re-rooted by eviction (the oldest
  // surviving tree lost its root).
  EXPECT_NE(std::count(parents.begin(), parents.end(), 0u), 0);
}

TEST_F(ObsTest, RoundTripExportIsStable) {
  TraceBuffer buffer;
  const SpanId root = buffer.Begin("client", "read");
  buffer.Annotate(root, "bytes", "4096");
  const SpanId child = buffer.Begin("rpc", "call", buffer.ContextFor(root));
  buffer.End(child);
  buffer.End(root);
  const std::string once = DumpTraceJson(buffer);
  // Serializing the snapshot through the vector overload must be
  // byte-identical — trace_inspect --verify depends on this.
  const std::string twice = DumpTraceJson(buffer.CompletedInOrder());
  EXPECT_EQ(once, twice);
  EXPECT_EQ(TraceDigest(buffer), TraceDigest(buffer));

  const std::string chrome = DumpChromeTraceJson(buffer);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, AnalyzeRequestTreeAttributesPhases) {
  // Hand-built serial cold-read tree:
  //   client.read   [0, 100]
  //     rpc.call    [5, 95]
  //       iscsi     [10, 90]
  //         disk io [20, 80] service_ns=25
  //           spin  [20, 50]
  std::vector<TraceSpan> spans;
  TraceSpan root{1, 1, 0, "client", "read", 0, 100, {}};
  TraceSpan rpc{2, 1, 1, "rpc", "call", 5, 95, {}};
  TraceSpan target{3, 1, 2, "iscsi:host-0", "target_read", 10, 90, {}};
  TraceSpan io{4, 1, 3, "disk:d0", "io", 20, 80, {{"service_ns", "25"}}};
  TraceSpan spin{5, 1, 4, "disk:d0", "spin_up", 20, 50, {}};
  spans = {root, rpc, target, io, spin};

  const PhaseBreakdown b = AnalyzeRequestTree(spans, 1);
  EXPECT_EQ(b.e2e, 100);
  EXPECT_EQ(b.spin_up, 30);       // [20,50]
  EXPECT_EQ(b.disk_service, 25);  // attr, inside io's exclusive 30ns
  EXPECT_EQ(b.queue_wait, 5);     // io exclusive (30) - service (25)
  EXPECT_EQ(b.rpc, 10);           // [5,95] minus [10,90]
  EXPECT_EQ(b.fabric_transfer, 20);  // [10,90] minus [20,80]
  EXPECT_EQ(b.retry_backoff, 0);
  EXPECT_EQ(b.other, 10);         // root slack [0,5)+(95,100]
  // The taxonomy partitions the root span exactly.
  EXPECT_EQ(b.Sum(), b.e2e);

  EXPECT_EQ(TraceRoots(spans).size(), 1u);
  EXPECT_EQ(TraceRoots(spans).front(), 1u);
}

TEST_F(ObsTest, WindowedAggregatorDeltasAndQuantiles) {
  sim::Simulator sim;
  BindSimulator(&sim);
  MetricsRegistry registry;
  registry.set_time_source([] { return sim::Time(0); });
  WindowedAggregator agg;

  registry.Increment("ops", 10);
  registry.Observe("lat_us", 5.0, {10.0, 100.0});
  registry.Observe("lat_us", 50.0, {10.0, 100.0});
  auto w1 = agg.CloseWindow(registry, sim::Seconds(1));
  EXPECT_EQ(w1.counter_deltas.at("ops"), 10u);
  EXPECT_EQ(w1.histograms.at("lat_us").count, 2u);
  EXPECT_FALSE(std::isnan(w1.histograms.at("lat_us").Quantile(0.5)));

  // Second window: only 3 more ops, no histogram samples -> NaN quantile.
  registry.Increment("ops", 3);
  auto w2 = agg.CloseWindow(registry, sim::Seconds(2));
  EXPECT_EQ(w2.counter_deltas.at("ops"), 3u);
  EXPECT_EQ(w2.histograms.at("lat_us").count, 0u);
  EXPECT_TRUE(std::isnan(w2.histograms.at("lat_us").Quantile(0.99)));
  BindSimulator(nullptr);
}

TEST_F(ObsTest, HealthMonitorFiresAndResolvesDeterministically) {
  auto run = [] {
    MetricsRegistry registry;
    registry.set_time_source([] { return sim::Time(0); });
    std::vector<SloRule> rules(1);
    rules[0].name = "retry-rate";
    rules[0].metric = "client.master_retries";
    rules[0].signal = SloRule::Signal::kCounterRate;
    rules[0].threshold = 5.0;  // per second
    rules[0].for_windows = 2;
    HealthMonitor monitor(sim::Seconds(1), std::move(rules));

    // Two breaching windows -> fired; one clean window -> resolved.
    registry.Increment("client.master_retries", 10);
    monitor.Tick(registry, sim::Seconds(1));
    EXPECT_TRUE(monitor.alerts().empty());
    registry.Increment("client.master_retries", 10);
    monitor.Tick(registry, sim::Seconds(2));
    monitor.Tick(registry, sim::Seconds(3));
    return monitor.ReportJson();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);  // bit-identical across repeated runs
  EXPECT_NE(first.find("\"kind\": \"fired\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\": \"resolved\""), std::string::npos);
  EXPECT_NE(first.find("retry-rate"), std::string::npos);
}

TEST_F(ObsTest, HealthMonitorFinalizeFlushesPartialWindow) {
  MetricsRegistry registry;
  registry.set_time_source([] { return sim::Time(0); });
  std::vector<SloRule> rules(1);
  rules[0].name = "op-count";
  rules[0].metric = "ops";
  rules[0].signal = SloRule::Signal::kCounterDelta;
  rules[0].threshold = 5.0;
  HealthMonitor monitor(sim::Seconds(10), std::move(rules));

  registry.Increment("ops", 20);
  monitor.Finalize(registry, sim::Seconds(3));  // partial window flush
  EXPECT_EQ(monitor.windows_evaluated(), 1);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_TRUE(monitor.alerts().front().fired);
  // Finalize is idempotent at the same instant.
  monitor.Finalize(registry, sim::Seconds(3));
  EXPECT_EQ(monitor.windows_evaluated(), 1);
}

// ---------------------------------------------------------------------------
// MergeSnapshots edge cases. The fleet/sharded reports merge per-unit and
// per-group registries that may be empty (a unit whose workload never ran)
// or only partially overlapping (different groups touch different
// instruments); the merge must stay well-defined and order-independent on
// the non-overlapping parts.

TEST_F(ObsTest, MergeSnapshotsOfNothingIsEmpty) {
  const MetricsSnapshot merged = MergeSnapshots({});
  EXPECT_EQ(merged.at, 0);
  EXPECT_TRUE(merged.counters.empty());
  EXPECT_TRUE(merged.gauges.empty());
  EXPECT_TRUE(merged.histograms.empty());
}

TEST_F(ObsTest, MergeSnapshotsEmptyRegistriesAreIdentity) {
  MetricsRegistry empty_a, empty_b, populated;
  populated.Increment("unit.ops", 9);
  populated.Observe("unit.lat_us", 42.0);
  populated.GetGauge("unit.depth").Set(3.0, 7);

  // Empty parts on either side must not perturb the populated one.
  const MetricsSnapshot merged = MergeSnapshots(
      {empty_a.Snapshot(), populated.Snapshot(), empty_b.Snapshot()});
  EXPECT_EQ(merged.counters.at("unit.ops"), 9u);
  EXPECT_EQ(merged.histograms.at("unit.lat_us").count, 1u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("unit.depth").value, 3.0);
  EXPECT_EQ(merged.counters.size(), 1u);

  // An all-empty merge is an empty snapshot, not a crash.
  const MetricsSnapshot nothing =
      MergeSnapshots({empty_a.Snapshot(), empty_b.Snapshot()});
  EXPECT_TRUE(nothing.counters.empty());
  EXPECT_TRUE(nothing.histograms.empty());
}

TEST_F(ObsTest, MergeSnapshotsPartialOverlapKeepsDisjointNames) {
  MetricsRegistry a, b, c;
  a.Increment("shared.count", 1);
  b.Increment("shared.count", 2);
  a.Increment("only.a", 10);
  b.Increment("only.b", 20);
  c.Observe("only.c_us", 5.0);
  b.Observe("shared.lat_us", 1.0);
  c.Observe("shared.lat_us", 3.0);

  const MetricsSnapshot merged =
      MergeSnapshots({a.Snapshot(), b.Snapshot(), c.Snapshot()});
  EXPECT_EQ(merged.counters.at("shared.count"), 3u);
  EXPECT_EQ(merged.counters.at("only.a"), 10u);
  EXPECT_EQ(merged.counters.at("only.b"), 20u);
  EXPECT_EQ(merged.histograms.at("only.c_us").count, 1u);
  const auto& shared = merged.histograms.at("shared.lat_us");
  EXPECT_EQ(shared.count, 2u);
  EXPECT_DOUBLE_EQ(shared.sum, 4.0);
  EXPECT_DOUBLE_EQ(shared.min, 1.0);
  EXPECT_DOUBLE_EQ(shared.max, 3.0);

  // A part that lacks a name entirely behaves like contributing zero:
  // merging {a} and {a, empty} agree.
  MetricsRegistry empty;
  EXPECT_EQ(MergeSnapshots({a.Snapshot()}).counters,
            MergeSnapshots({a.Snapshot(), empty.Snapshot()}).counters);
}

}  // namespace
}  // namespace ustore::obs
