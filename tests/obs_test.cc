#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace ustore::obs {
namespace {

// Every test starts from a clean global registry/trace buffer: they are
// process-wide singletons shared across the whole binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics().Clear();
    Tracer().Clear();
    BindSimulator(nullptr);
  }
  void TearDown() override {
    Metrics().Clear();
    Tracer().Clear();
    BindSimulator(nullptr);
  }
};

TEST_F(ObsTest, CounterIncrements) {
  Metrics().Increment("test.counter");
  Metrics().Increment("test.counter", 4);
  EXPECT_EQ(Metrics().GetCounter("test.counter").value(), 5u);
}

TEST_F(ObsTest, HistogramStats) {
  Histogram h({10, 20, 50});
  for (double v : {1.0, 12.0, 30.0, 100.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 143.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 35.75);
}

TEST_F(ObsTest, HistogramQuantilesInterpolate) {
  Histogram h({10, 20, 50});
  // 100 samples uniform in (0, 10]: every quantile stays inside bucket 0.
  for (int i = 1; i <= 100; ++i) h.Record(i * 0.1);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, 10.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
}

TEST_F(ObsTest, HistogramOverflowBucketClampsToMax) {
  Histogram h({10});
  h.Record(1000);
  h.Record(2000);
  EXPECT_LE(h.Quantile(0.99), 2000.0);
  EXPECT_GE(h.Quantile(0.99), 1000.0);
}

TEST_F(ObsTest, SnapshotAndResetSemantics) {
  sim::Simulator sim;
  BindSimulator(&sim);
  sim.Schedule(sim::Seconds(3), [] {
    Metrics().Increment("test.ops", 7);
    Metrics().SetGauge("test.state", 2.0);
    Metrics().Observe("test.latency_us", 42.0);
  });
  sim.Run();

  MetricsSnapshot snapshot = Metrics().Snapshot(/*reset=*/true);
  EXPECT_EQ(snapshot.at, sim::Seconds(3));
  EXPECT_EQ(snapshot.counters.at("test.ops"), 7u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("test.state").value, 2.0);
  ASSERT_EQ(snapshot.gauges.at("test.state").samples.size(), 1u);
  EXPECT_EQ(snapshot.gauges.at("test.state").samples[0].at, sim::Seconds(3));
  EXPECT_EQ(snapshot.histograms.at("test.latency_us").count, 1u);

  // After a resetting snapshot: counters zero, histograms empty, gauge
  // trail cleared but last value retained.
  MetricsSnapshot after = Metrics().Snapshot();
  EXPECT_EQ(after.counters.at("test.ops"), 0u);
  EXPECT_EQ(after.histograms.at("test.latency_us").count, 0u);
  EXPECT_DOUBLE_EQ(after.gauges.at("test.state").value, 2.0);
  EXPECT_TRUE(after.gauges.at("test.state").samples.empty());
}

TEST_F(ObsTest, LoggerWritesFeedLevelCounters) {
  Metrics();  // ensure the observer hook is installed
  USTORE_LOG(Warning) << "obs_test warning";
  USTORE_LOG(Error) << "obs_test error";
  EXPECT_GE(Metrics().GetCounter("log.warnings").value(), 1u);
  EXPECT_GE(Metrics().GetCounter("log.errors").value(), 1u);
}

TEST_F(ObsTest, TraceSpanLifecycle) {
  sim::Simulator sim;
  BindSimulator(&sim);
  SpanId span = kInvalidSpan;
  sim.Schedule(sim::Seconds(1), [&] {
    span = Tracer().Begin("unit", "op");
    Tracer().Annotate(span, "key", "value");
  });
  sim.Schedule(sim::Seconds(2), [&] { Tracer().End(span); });
  sim.Run();

  ASSERT_EQ(Tracer().completed().size(), 1u);
  const TraceSpan& done = Tracer().completed().front();
  EXPECT_EQ(done.component, "unit");
  EXPECT_EQ(done.name, "op");
  EXPECT_EQ(done.start, sim::Seconds(1));
  EXPECT_EQ(done.end, sim::Seconds(2));
  EXPECT_EQ(done.duration(), sim::Seconds(1));
  ASSERT_EQ(done.attrs.size(), 1u);
  EXPECT_EQ(done.attrs[0].first, "key");
  EXPECT_EQ(done.attrs[0].second, "value");
}

TEST_F(ObsTest, TraceBufferEvictsOldestWhenFull) {
  TraceBuffer buffer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    buffer.Record("unit", "op" + std::to_string(i), i, i + 1);
  }
  EXPECT_EQ(buffer.completed().size(), 4u);
  EXPECT_EQ(buffer.dropped(), 6u);
  // The survivors are the newest four.
  EXPECT_EQ(buffer.completed().front().name, "op6");
  EXPECT_EQ(buffer.completed().back().name, "op9");
}

TEST_F(ObsTest, TimelineIsSortedBySimTime) {
  TraceBuffer buffer;
  buffer.Record("b", "second", sim::Seconds(2), sim::Seconds(3));
  buffer.Record("a", "first", sim::Seconds(1), sim::Seconds(4));
  const std::string timeline = FormatTimeline(buffer);
  const auto first = timeline.find("first");
  const auto second = timeline.find("second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST_F(ObsTest, MetricHandlesCacheAndIncrement) {
  CounterHandle ops("handle.ops");
  ops.Increment();
  ops.Increment(4);
  EXPECT_EQ(Metrics().GetCounter("handle.ops").value(), 5u);

  GaugeHandle state("handle.state");
  state.Set(2.5);
  EXPECT_DOUBLE_EQ(Metrics().GetGauge("handle.state").value(), 2.5);

  HistogramHandle lat("handle.latency_us");
  lat.Observe(10.0);
  lat.Observe(20.0);
  EXPECT_EQ(Metrics().GetHistogram("handle.latency_us").count(), 2u);
}

TEST_F(ObsTest, MetricHandlesSurviveRegistryClear) {
  // Handles cache a pointer into the registry; Clear() invalidates it via
  // the registry generation, so a stale handle re-resolves instead of
  // writing through a dangling pointer.
  CounterHandle ops("handle.ops");
  ops.Increment(3);
  Metrics().Clear();
  ops.Increment(2);
  EXPECT_EQ(Metrics().GetCounter("handle.ops").value(), 2u);

  GaugeHandle state("handle.state");
  state.Set(1.0);
  Metrics().Clear();
  state.Set(7.0);
  EXPECT_DOUBLE_EQ(Metrics().GetGauge("handle.state").value(), 7.0);

  HistogramHandle lat("handle.latency_us");
  lat.Observe(5.0);
  Metrics().Clear();
  lat.Observe(9.0);
  EXPECT_EQ(Metrics().GetHistogram("handle.latency_us").count(), 1u);
}

TEST_F(ObsTest, DumpJsonContainsEveryKind) {
  Metrics().Increment("test.ops");
  Metrics().SetGauge("test.state", 1.0);
  Metrics().Observe("test.latency_us", 5.0);
  const std::string json = DumpJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace ustore::obs
