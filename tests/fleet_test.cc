// core::Fleet determinism and per-thread observability scoping.
//
// The fleet contract (DESIGN.md §8): the merged report is a pure function
// of (fleet seed, unit count, workload) — the thread count must not leak
// into any reported value. These tests run the same fleet serially and on
// a pool and require bit-identical merged JSON, and separately pin the
// ScopedObsBinding mechanics the fleet relies on for isolation.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ustore::core {
namespace {

// A small deterministic workload: mount two volumes, mix archival writes
// with cold reads, all randomness from the unit context's stream.
void SmallWorkload(UnitContext& ctx) {
  Cluster& cluster = *ctx.cluster;
  auto client =
      cluster.MakeClient("fleet-client-u" + std::to_string(ctx.unit_id));
  std::vector<ClientLib::Volume*> volumes;
  for (int i = 0; i < 2; ++i) {
    client->AllocateAndMount("fleet-svc", GiB(1),
                             [&](Result<ClientLib::Volume*> r) {
                               if (r.ok()) volumes.push_back(*r);
                             });
  }
  cluster.RunFor(sim::Seconds(10));
  ASSERT_FALSE(volumes.empty());
  std::uint64_t tag = 1;
  for (int op = 0; op < 12; ++op) {
    ClientLib::Volume* volume =
        volumes[ctx.rng->NextBelow(volumes.size())];
    if (ctx.rng->NextBool(0.4)) {
      volume->Write(MiB(ctx.rng->NextBelow(512)), MiB(1), false, tag++,
                    [](Status) {});
    } else {
      volume->Read(MiB(ctx.rng->NextBelow(512)), KiB(128), true,
                   [](Result<std::uint64_t>) {});
    }
    cluster.RunFor(sim::MillisD(250));
  }
  cluster.RunFor(sim::Seconds(2));
}

TEST(FleetUnitSeedTest, DistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (int unit = 0; unit < 128; ++unit) {
    seeds.insert(FleetUnitSeed(42, unit));
  }
  EXPECT_EQ(seeds.size(), 128u) << "unit seeds collided";
  EXPECT_EQ(FleetUnitSeed(42, 0), FleetUnitSeed(42, 0));
  EXPECT_NE(FleetUnitSeed(42, 0), FleetUnitSeed(43, 0));
}

TEST(FleetTest, MergedReportIsIdenticalAcrossThreadCounts) {
  FleetOptions options;
  options.units = 3;
  options.seed = 2026;

  options.threads = 1;
  const FleetReport serial = Fleet(options).Run(SmallWorkload);
  options.threads = 8;
  const FleetReport threaded = Fleet(options).Run(SmallWorkload);

  ASSERT_EQ(serial.units.size(), 3u);
  ASSERT_EQ(threaded.units.size(), 3u);
  for (int unit = 0; unit < 3; ++unit) {
    const UnitReport& a = serial.units[static_cast<std::size_t>(unit)];
    const UnitReport& b = threaded.units[static_cast<std::size_t>(unit)];
    EXPECT_EQ(a.error, "") << "unit " << unit;
    EXPECT_EQ(a.seed, b.seed) << "unit " << unit;
    EXPECT_EQ(a.sim_end, b.sim_end) << "unit " << unit;
    EXPECT_EQ(a.events_processed, b.events_processed) << "unit " << unit;
    EXPECT_EQ(a.trace_completed, b.trace_completed) << "unit " << unit;
    // The whole causal forest, fingerprinted: identical spans, ids, attrs
    // and timestamps regardless of which worker thread ran the unit.
    EXPECT_EQ(a.trace_digest, b.trace_digest) << "unit " << unit;
    // And the SLO engine's full report (windows, rules, alert stream).
    EXPECT_FALSE(a.health_json.empty()) << "unit " << unit;
    EXPECT_EQ(a.health_json, b.health_json) << "unit " << unit;
    EXPECT_EQ(a.allocations, b.allocations) << "unit " << unit;
    EXPECT_EQ(a.metrics.counters, b.metrics.counters) << "unit " << unit;
  }
  EXPECT_EQ(serial.MergedCounters(), threaded.MergedCounters());
  // The full contract: canonical rendering is bit-identical.
  EXPECT_EQ(serial.ToJson(), threaded.ToJson());
  // And the workload actually did something worth comparing.
  EXPECT_GT(serial.total_events, 0u);
  const auto merged = serial.MergedCounters();
  EXPECT_GT(merged.at("iscsi.target.reads"), 0u);
}

TEST(FleetTest, UnitsGetIndependentSeedsAndDisjointMetrics) {
  FleetOptions options;
  options.units = 2;
  options.threads = 2;
  options.seed = 7;
  const FleetReport report = Fleet(options).Run(SmallWorkload);
  ASSERT_EQ(report.units.size(), 2u);
  EXPECT_NE(report.units[0].seed, report.units[1].seed);
  // Both units ran a full cluster + workload in isolated registries.
  for (const UnitReport& unit : report.units) {
    EXPECT_EQ(unit.error, "");
    EXPECT_GT(unit.events_processed, 0u);
    EXPECT_GT(unit.metrics.counters.at("master.heartbeats_received"), 0u);
    EXPECT_FALSE(unit.allocations.empty());
  }
}

// ---------------------------------------------------------------------------
// Fleet end-to-end on the sharded engine (DESIGN.md §14): every deploy unit
// is a ShardedCluster, and the merged report must be bit-identical at any
// (outer threads × inner shards × inner threads), sharded or oracle.

ShardedFleetOptions SmallShardedFleet(bool sharded_master) {
  ShardedFleetOptions options;
  options.units = 3;
  options.seed = 2027;
  options.unit.cluster.fabric.leaf_hubs_per_group = 2;
  options.unit.duration = sim::Millis(800);
  options.unit.burst_period = sim::Millis(50);
  options.unit.burst_ops = 8;
  options.unit.sweep_width = 4;
  options.unit.idle_timeout = sim::Millis(50);
  options.unit.directive_every_ops = 512;
  options.unit.fault_probability = 0.05;
  options.unit.sharded_master = sharded_master;
  if (sharded_master) {
    options.unit.meta_lookups_per_burst = 1;
    options.unit.host_crash_probability = 0.02;
  }
  return options;
}

TEST(ShardedFleetTest, BitIdenticalAcrossEnginesThreadsAndShards) {
  for (const bool sharded_master : {false, true}) {
    // The oracle fleet: serial outer pool, single-queue inner engines.
    ShardedFleetOptions oracle_options = SmallShardedFleet(sharded_master);
    oracle_options.threads = 1;
    oracle_options.use_sharded_engine = false;
    const ShardedFleetReport oracle = RunShardedFleet(oracle_options);
    const std::string oracle_json = oracle.ToJson();
    ASSERT_EQ(oracle.units.size(), 3u);
    EXPECT_GT(oracle.total_events, 0u);

    for (const int outer_threads : {1, 4}) {
      for (const int inner_shards : {1, 4}) {
        ShardedFleetOptions run = SmallShardedFleet(sharded_master);
        run.threads = outer_threads;
        run.use_sharded_engine = true;
        run.unit.shards = inner_shards;
        run.unit.threads = inner_shards > 1 ? 2 : 1;
        const ShardedFleetReport fleet = RunShardedFleet(run);
        EXPECT_EQ(fleet.ToJson(), oracle_json)
            << "sharded_master=" << sharded_master
            << " outer_threads=" << outer_threads
            << " inner_shards=" << inner_shards;
        EXPECT_EQ(fleet.Digest(), oracle.Digest());
      }
    }
  }
}

TEST(ShardedFleetTest, UnitsAreIndependentAndMergedInOrder) {
  ShardedFleetOptions options = SmallShardedFleet(true);
  options.threads = 2;
  options.unit.shards = 2;
  const ShardedFleetReport report = RunShardedFleet(options);
  ASSERT_EQ(report.units.size(), 3u);
  ASSERT_EQ(report.unit_seeds.size(), 3u);

  // Derived seeds are the fleet contract ones, and distinct.
  std::set<std::uint64_t> seeds;
  for (int unit = 0; unit < 3; ++unit) {
    EXPECT_EQ(report.unit_seeds[static_cast<std::size_t>(unit)],
              FleetUnitSeed(options.seed, unit));
    seeds.insert(report.unit_seeds[static_cast<std::size_t>(unit)]);
    const ShardedClusterReport& cluster =
        report.units[static_cast<std::size_t>(unit)];
    EXPECT_EQ(cluster.seed, FleetUnitSeed(options.seed, unit));
    EXPECT_GT(cluster.events_processed, 0u);
    EXPECT_GT(cluster.lease_grants, 0u);  // sharded master engaged per unit
    EXPECT_TRUE(cluster.master_index_ok);
  }
  EXPECT_EQ(seeds.size(), 3u);

  // The fleet merge is the unit-order MergeSnapshots of the units' own
  // merged snapshots: totals add up.
  std::uint64_t ops = 0;
  for (const ShardedClusterReport& cluster : report.units) {
    ops += cluster.merged.counters.at("cluster.unit.io.ops");
  }
  EXPECT_EQ(report.merged.counters.at("cluster.unit.io.ops"), ops);
  EXPECT_GT(ops, 0u);
}

TEST(ScopedObsBindingTest, RedirectsAndRestoresPerThread) {
  obs::Metrics().Clear();
  obs::CounterHandle handle("binding.test");
  handle.Increment();  // lands in the global registry
  {
    obs::MetricsRegistry local;
    obs::TraceBuffer local_trace;
    obs::ScopedObsBinding binding(&local, &local_trace);
    // Cached handles re-resolve against the thread-current registry.
    handle.Increment();
    handle.Increment();
    EXPECT_EQ(local.GetCounter("binding.test").value(), 2u);
    EXPECT_EQ(&obs::Tracer(), &local_trace);
    obs::Tracer().Record("test", "span", 0, 1);
    EXPECT_EQ(local_trace.completed_count(), 1u);
  }
  // Restored: the global registry is untouched by the bound increments.
  handle.Increment();
  EXPECT_EQ(obs::Metrics().GetCounter("binding.test").value(), 2u);
}

TEST(ScopedObsBindingTest, ThreadsDoNotShareBindings) {
  obs::MetricsRegistry main_local;
  obs::TraceBuffer main_trace;
  obs::ScopedObsBinding binding(&main_local, &main_trace);
  obs::Metrics().Increment("shared.name");

  obs::MetricsRegistry* seen_on_thread = nullptr;
  std::thread worker([&] {
    // A fresh thread has no binding: it sees the process-wide default,
    // not this test's thread-local registry.
    seen_on_thread = &obs::Metrics();
  });
  worker.join();
  EXPECT_NE(seen_on_thread, &main_local);
  EXPECT_EQ(main_local.GetCounter("shared.name").value(), 1u);
}

}  // namespace
}  // namespace ustore::core
