// Integration tests: MetaService replicas + MetaClient over the simulated
// network (the "ZooKeeper" of §V-B).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consensus/meta_client.h"
#include "consensus/meta_service.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace ustore::consensus {
namespace {

class MetaClusterTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 3;

  MetaClusterTest() : network_(&sim_, Rng(5)) {
    MetaService::Options options;
    for (int i = 0; i < kReplicas; ++i) {
      options.paxos.peers.push_back("meta-paxos-" + std::to_string(i));
      options.service_ids.push_back("meta-" + std::to_string(i));
    }
    Rng rng(11);
    for (int i = 0; i < kReplicas; ++i) {
      services_.push_back(std::make_unique<MetaService>(
          &sim_, &network_, options, i, rng.Fork()));
    }
    client_ = MakeClient("client-0");
    sim_.RunFor(sim::Seconds(3));  // let a leader emerge
  }

  std::unique_ptr<MetaClient> MakeClient(const std::string& id) {
    MetaClient::Options options;
    for (int i = 0; i < kReplicas; ++i) {
      options.servers.push_back("meta-" + std::to_string(i));
    }
    return std::make_unique<MetaClient>(&sim_, &network_, id, options);
  }

  int LeaderIndex() const {
    for (int i = 0; i < kReplicas; ++i) {
      if (!services_[i]->stopped() && services_[i]->is_leader()) return i;
    }
    return -1;
  }

  Status CreateSync(MetaClient& client, const std::string& path,
                    const std::string& data = "", bool ephemeral = false) {
    Status out = InternalError("pending");
    client.Create(path, data, ephemeral, [&](Status s) { out = s; });
    sim_.RunFor(sim::Seconds(2));
    return out;
  }

  sim::Simulator sim_;
  net::Network network_;
  std::vector<std::unique_ptr<MetaService>> services_;
  std::unique_ptr<MetaClient> client_;
};

TEST_F(MetaClusterTest, LeaderEmerges) { EXPECT_GE(LeaderIndex(), 0); }

TEST_F(MetaClusterTest, CreateGetRoundTrip) {
  ASSERT_TRUE(CreateSync(*client_, "/config", "v1").ok());

  Result<Znode> got = InternalError("pending");
  client_->Get("/config", [&](Result<Znode> r) { got = std::move(r); });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "v1");
}

TEST_F(MetaClusterTest, WritesReplicateToAllServers) {
  ASSERT_TRUE(CreateSync(*client_, "/a", "x").ok());
  sim_.RunFor(sim::Seconds(2));
  for (int i = 0; i < kReplicas; ++i) {
    EXPECT_TRUE(services_[i]->tree().Exists("/a")) << "replica " << i;
  }
}

TEST_F(MetaClusterTest, GuardedSetConflict) {
  ASSERT_TRUE(CreateSync(*client_, "/a", "x").ok());
  Status status = InternalError("pending");
  client_->Set("/a", "y", 7, [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(2));
  EXPECT_EQ(status.code(), StatusCode::kConflict);
}

TEST_F(MetaClusterTest, GetChildren) {
  ASSERT_TRUE(CreateSync(*client_, "/hosts").ok());
  ASSERT_TRUE(CreateSync(*client_, "/hosts/h0").ok());
  ASSERT_TRUE(CreateSync(*client_, "/hosts/h1").ok());

  Result<std::vector<std::string>> children = InternalError("pending");
  client_->GetChildren("/hosts", [&](Result<std::vector<std::string>> r) {
    children = std::move(r);
  });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"/hosts/h0", "/hosts/h1"}));
}

TEST_F(MetaClusterTest, SessionAndEphemeralLifecycle) {
  Status ready = InternalError("pending");
  client_->Start([&](Status s) { ready = s; });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(client_->has_session());

  ASSERT_TRUE(CreateSync(*client_, "/hosts").ok());
  ASSERT_TRUE(CreateSync(*client_, "/hosts/h0", "alive", true).ok());

  // While keepalives flow, the ephemeral stays.
  sim_.RunFor(sim::Seconds(15));
  const int leader = LeaderIndex();
  ASSERT_GE(leader, 0);
  EXPECT_TRUE(services_[leader]->tree().Exists("/hosts/h0"));

  // Crash the client: keepalives stop, session expires, ephemeral goes.
  client_->Crash();
  sim_.RunFor(sim::Seconds(15));
  const int leader2 = LeaderIndex();
  ASSERT_GE(leader2, 0);
  EXPECT_FALSE(services_[leader2]->tree().Exists("/hosts/h0"));
}

TEST_F(MetaClusterTest, EphemeralCreateWithoutSessionFails) {
  Status status = InternalError("pending");
  client_->Create("/x", "", true, [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(MetaClusterTest, DataWatchFires) {
  ASSERT_TRUE(CreateSync(*client_, "/w", "v0").ok());

  std::string fired_path;
  Status registered = InternalError("pending");
  client_->Watch("/w", WatchType::kData,
                 [&](const std::string& path) { fired_path = path; },
                 [&](Status s) { registered = s; });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(registered.ok());
  EXPECT_TRUE(fired_path.empty());

  Status set_status = InternalError("pending");
  client_->Set("/w", "v1", kAnyVersion, [&](Status s) { set_status = s; });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(set_status.ok());
  EXPECT_EQ(fired_path, "/w");
}

TEST_F(MetaClusterTest, ChildWatchFiresOnEphemeralExpiry) {
  // This is the Master's host-liveness mechanism: watch /hosts children,
  // get notified when a host's session dies.
  auto host_client = MakeClient("host-client");
  Status ready = InternalError("pending");
  host_client->Start([&](Status s) { ready = s; });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(ready.ok());

  ASSERT_TRUE(CreateSync(*client_, "/hosts").ok());
  ASSERT_TRUE(CreateSync(*host_client, "/hosts/h0", "", true).ok());

  bool fired = false;
  client_->Watch("/hosts", WatchType::kChildren,
                 [&](const std::string&) { fired = true; },
                 [](Status) {});
  sim_.RunFor(sim::Seconds(2));
  ASSERT_FALSE(fired);

  host_client->Crash();
  sim_.RunFor(sim::Seconds(15));
  EXPECT_TRUE(fired);
}

TEST_F(MetaClusterTest, WatchIsOneShot) {
  ASSERT_TRUE(CreateSync(*client_, "/w", "v0").ok());
  int fires = 0;
  client_->Watch("/w", WatchType::kData,
                 [&](const std::string&) { ++fires; }, [](Status) {});
  sim_.RunFor(sim::Seconds(1));
  for (int i = 1; i <= 3; ++i) {
    Status status = InternalError("pending");
    client_->Set("/w", "v" + std::to_string(i), kAnyVersion,
                 [&](Status s) { status = s; });
    sim_.RunFor(sim::Seconds(2));
    ASSERT_TRUE(status.ok());
  }
  EXPECT_EQ(fires, 1);
}

TEST_F(MetaClusterTest, ClientFollowsLeaderFailover) {
  ASSERT_TRUE(CreateSync(*client_, "/a", "1").ok());
  const int old_leader = LeaderIndex();
  ASSERT_GE(old_leader, 0);
  services_[old_leader]->Stop();
  sim_.RunFor(sim::Seconds(5));

  // Writes keep working against the new leader.
  Status status = InternalError("pending");
  client_->Set("/a", "2", kAnyVersion, [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(5));
  EXPECT_TRUE(status.ok());

  // And the restarted replica converges.
  services_[old_leader]->Restart();
  sim_.RunFor(sim::Seconds(8));
  EXPECT_TRUE(services_[old_leader]->tree().Exists("/a"));
}

TEST_F(MetaClusterTest, KilledLeaderMidWriteRetriesWithBackoffAndSucceeds) {
  // Kill the leader and issue a write in the same instant: the request hits
  // a dead (or not-yet-elected) server, the client backs off with jitter,
  // rotates, and lands on the new leader — and the retries are visible on
  // the meta_client.retries counter.
  ASSERT_TRUE(CreateSync(*client_, "/pre", "x").ok());
  const std::uint64_t retries_before =
      obs::Metrics().GetCounter("meta_client.retries").value();

  const int leader = LeaderIndex();
  ASSERT_GE(leader, 0);
  services_[leader]->Stop();
  Status status = InternalError("pending");
  client_->Create("/after-failover", "v", false,
                  [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(20));
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_GT(obs::Metrics().GetCounter("meta_client.retries").value(),
            retries_before);

  bool found = false;
  client_->Get("/after-failover", [&](Result<Znode> r) {
    found = r.ok() && r->data == "v";
  });
  sim_.RunFor(sim::Seconds(2));
  EXPECT_TRUE(found);
}

TEST_F(MetaClusterTest, MasterElectionPattern) {
  // Two "master" processes race to create the same ephemeral node; exactly
  // one wins; when the winner dies, a watch lets the loser take over.
  auto master_a = MakeClient("master-a");
  auto master_b = MakeClient("master-b");
  Status ready_a = InternalError(""), ready_b = InternalError("");
  master_a->Start([&](Status s) { ready_a = s; });
  master_b->Start([&](Status s) { ready_b = s; });
  sim_.RunFor(sim::Seconds(3));
  ASSERT_TRUE(ready_a.ok());
  ASSERT_TRUE(ready_b.ok());
  ASSERT_TRUE(CreateSync(*client_, "/master").ok());

  Status win_a = InternalError("pending"), win_b = InternalError("pending");
  master_a->Create("/master/leader", "a", true, [&](Status s) { win_a = s; });
  master_b->Create("/master/leader", "b", true, [&](Status s) { win_b = s; });
  sim_.RunFor(sim::Seconds(3));
  EXPECT_NE(win_a.ok(), win_b.ok());  // exactly one winner

  MetaClient* loser = win_a.ok() ? master_b.get() : master_a.get();
  MetaClient* winner = win_a.ok() ? master_a.get() : master_b.get();

  bool leadership_open = false;
  loser->Watch("/master/leader", WatchType::kData,
               [&](const std::string&) { leadership_open = true; },
               [](Status) {});
  sim_.RunFor(sim::Seconds(1));

  winner->Crash();
  sim_.RunFor(sim::Seconds(15));
  EXPECT_TRUE(leadership_open);

  Status takeover = InternalError("pending");
  loser->Create("/master/leader", "new", true,
                [&](Status s) { takeover = s; });
  sim_.RunFor(sim::Seconds(3));
  EXPECT_TRUE(takeover.ok());
}

}  // namespace
}  // namespace ustore::consensus
