#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "fabric/fabric_manager.h"
#include "sim/simulator.h"

namespace ustore::fabric {
namespace {

class FabricManagerTest : public ::testing::Test {
 protected:
  FabricManagerTest()
      : manager_(&sim_, BuildPrototypeFabric(), FabricManager::Options{},
                 Rng(7)) {}

  NodeIndex NodeNamed(const std::string& name) {
    auto r = manager_.topology().Find(name);
    EXPECT_TRUE(r.ok());
    return r.value_or(kInvalidNode);
  }

  sim::Simulator sim_;
  FabricManager manager_;
};

TEST_F(FabricManagerTest, InitialEnumerationAnnouncesAllDevices) {
  sim_.RunFor(sim::Seconds(10));
  for (int h = 0; h < 4; ++h) {
    // Each host sees mid hub + leaf hub + 4 disks = 6 devices.
    EXPECT_EQ(manager_.host_stack(h)->recognized_count(), 6) << "host " << h;
  }
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-15"), 3);
}

TEST_F(FabricManagerTest, DriveSwitchMovesDiskGroup) {
  sim_.RunFor(sim::Seconds(10));
  // Flip swl-0: leaf hub 0 (disks 0-3) moves from midhub-0 to midhub-1,
  // i.e. from host 0 to host 1.
  ASSERT_TRUE(manager_.DriveSwitch(0, NodeNamed("swl-0"), true).ok());
  sim_.RunFor(sim::Seconds(10));
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 1);
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-3"), 1);
  EXPECT_EQ(manager_.host_stack(0)->recognized_count(), 1);  // just midhub-0
  EXPECT_EQ(manager_.host_stack(1)->recognized_count(), 11);
}

TEST_F(FabricManagerTest, SwitchBackRestoresOriginal) {
  sim_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(manager_.DriveSwitch(0, NodeNamed("swl-0"), true).ok());
  sim_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(manager_.DriveSwitch(0, NodeNamed("swl-0"), false).ok());
  sim_.RunFor(sim::Seconds(10));
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
}

TEST_F(FabricManagerTest, DiskPowerRelayCutsPowerAndVisibility) {
  sim_.RunFor(sim::Seconds(10));
  const NodeIndex d0 = NodeNamed("disk-0");
  ASSERT_TRUE(manager_.DriveDiskPower(0, d0, false).ok());
  sim_.RunFor(sim::Seconds(5));
  EXPECT_EQ(manager_.disk("disk-0")->state(), hw::DiskState::kPoweredOff);
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), -1);

  ASSERT_TRUE(manager_.DriveDiskPower(0, d0, true).ok());
  sim_.RunFor(sim::Seconds(10));
  EXPECT_EQ(manager_.disk("disk-0")->state(), hw::DiskState::kSpunDown);
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
}

TEST_F(FabricManagerTest, HubPowerRelayHidesSubtree) {
  sim_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(manager_.DriveHubPower(0, NodeNamed("leafhub-0"), false).ok());
  sim_.RunFor(sim::Seconds(5));
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(manager_.VisibleHostOfDisk("disk-" + std::to_string(d)), -1);
  }
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-4"), 1);  // other groups fine
}

TEST_F(FabricManagerTest, SecondaryMcuTakeoverPreservesStateThenToggles) {
  sim_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(manager_.DriveSwitch(0, NodeNamed("swl-0"), true).ok());
  sim_.RunFor(sim::Seconds(10));
  ASSERT_EQ(manager_.VisibleHostOfDisk("disk-0"), 1);

  // Primary's host dies; power on the secondary. No glitch expected.
  manager_.mcu(1)->PowerOn();
  sim_.RunFor(sim::Seconds(5));
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 1);

  // Secondary can now steer the fabric.
  ASSERT_TRUE(manager_.DriveSwitch(1, NodeNamed("swl-0"), false).ok());
  sim_.RunFor(sim::Seconds(10));
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
}

TEST_F(FabricManagerTest, CrashHostHidesItsDevicesUntilRestart) {
  sim_.RunFor(sim::Seconds(10));
  manager_.CrashHost(0);
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), -1);
  EXPECT_FALSE(manager_.host_alive(0));
  // Fabric-level routing is unchanged — only the OS view is gone.
  EXPECT_EQ(manager_.RoutedHostOfDisk(NodeNamed("disk-0")), 0);

  manager_.RestartHost(0);
  sim_.RunFor(sim::Seconds(10));
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
}

TEST_F(FabricManagerTest, FailUnitTakesDiskOffline) {
  sim_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(manager_.FailUnit("disk-0").ok());
  EXPECT_TRUE(manager_.disk("disk-0")->failed());
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), -1);

  ASSERT_TRUE(manager_.RepairUnit("disk-0").ok());
  sim_.RunFor(sim::Seconds(20));
  EXPECT_FALSE(manager_.disk("disk-0")->failed());
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
}

TEST_F(FabricManagerTest, FailLeafHubTakesGroupOffline) {
  sim_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(manager_.FailUnit("leafhub-0").ok());
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(manager_.VisibleHostOfDisk("disk-" + std::to_string(d)), -1);
  }
}

TEST_F(FabricManagerTest, AttachLossQuirkRequiresPowerCycle) {
  sim::Simulator sim;
  FabricManager::Options options;
  options.attach_loss_probability = 1.0;  // always lose switch attaches
  FabricManager mgr(&sim, BuildPrototypeFabric(), options, Rng(7));
  sim.RunFor(sim::Seconds(10));

  const NodeIndex swl0 = mgr.topology().Find("swl-0").value();
  ASSERT_TRUE(mgr.DriveSwitch(0, swl0, true).ok());
  sim.RunFor(sim::Seconds(10));
  // The disks moved but were never recognized anywhere.
  EXPECT_EQ(mgr.VisibleHostOfDisk("disk-0"), -1);

  // Power-cycling the disk clears the stuck state.
  const NodeIndex d0 = mgr.topology().Find("disk-0").value();
  ASSERT_TRUE(mgr.DriveDiskPower(0, d0, false).ok());
  sim.RunFor(sim::Seconds(2));
  ASSERT_TRUE(mgr.DriveDiskPower(0, d0, true).ok());
  sim.RunFor(sim::Seconds(10));
  EXPECT_EQ(mgr.VisibleHostOfDisk("disk-0"), 1);
}

TEST_F(FabricManagerTest, HubPowerModelMatchesTableIV) {
  FabricManager::HubPowerModel model;
  EXPECT_NEAR(FabricManager::HubPower(model, 0), 0.21, 0.01);
  EXPECT_NEAR(FabricManager::HubPower(model, 1), 1.06, 0.01);
  EXPECT_NEAR(FabricManager::HubPower(model, 2), 1.26, 0.04);
  EXPECT_NEAR(FabricManager::HubPower(model, 3), 1.47, 0.04);
  EXPECT_NEAR(FabricManager::HubPower(model, 4), 1.67, 0.01);
}

TEST_F(FabricManagerTest, FabricPowerDropsWhenHubsPoweredOff) {
  sim_.RunFor(sim::Seconds(10));
  const Watts before = manager_.FabricPower();
  EXPECT_GT(before, 5.0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        manager_.DriveHubPower(0, NodeNamed("leafhub-" + std::to_string(i)),
                               false).ok());
    ASSERT_TRUE(
        manager_.DriveHubPower(0, NodeNamed("midhub-" + std::to_string(i)),
                               false).ok());
  }
  sim_.RunFor(sim::Seconds(5));
  EXPECT_LT(manager_.FabricPower(), before * 0.3);
}

TEST_F(FabricManagerTest, DisksPowerReflectsStates) {
  sim_.RunFor(sim::Seconds(10));
  // 16 idle disks behind bridges: 16 * 5.76 W.
  EXPECT_NEAR(manager_.DisksPower(), 16 * 5.76, 0.5);
  for (int d = 0; d < 16; ++d) {
    manager_.disk("disk-" + std::to_string(d))->SpinDown();
  }
  EXPECT_NEAR(manager_.DisksPower(), 16 * 1.56, 0.5);
}

}  // namespace
}  // namespace ustore::fabric
