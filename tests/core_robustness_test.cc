// Robustness and edge-case coverage: controller belief reconciliation,
// disk-failure handling end to end, expose deadlines, master allocation
// exhaustion across many disks, and double-failure behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/cluster.h"

namespace ustore::core {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() { cluster_.Start(); }

  Result<ClientLib::Volume*> AllocateSync(ClientLib* client,
                                          const std::string& service,
                                          Bytes size) {
    Result<ClientLib::Volume*> out = InternalError("pending");
    client->AllocateAndMount(service, size,
                             [&](Result<ClientLib::Volume*> r) { out = r; });
    cluster_.RunFor(sim::Seconds(10));
    return out;
  }

  Cluster cluster_;
};

TEST_F(RobustnessTest, BackupControllerReconcilesBeliefsFromUsbReports) {
  // The primary controller moves group 0 to host 1; the backup only
  // watches USB reports, yet its beliefs must converge.
  net::RpcEndpoint admin(&cluster_.sim(), &cluster_.network(), "admin");
  auto request = std::make_shared<ScheduleRequest>();
  for (int d = 0; d < 4; ++d) {
    request->moves.push_back(DiskHostPair{"disk-" + std::to_string(d), 1});
  }
  Status status = InternalError("pending");
  admin.Call("ctrl-0-0", request, sim::Seconds(60),
             [&](Result<net::MessagePtr> r) { status = r.status(); });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(status.ok()) << status;

  EXPECT_EQ(cluster_.controller(0)->BelievedHostOfDisk("disk-0"), 1);
  EXPECT_EQ(cluster_.controller(1)->BelievedHostOfDisk("disk-0"), 1)
      << "backup controller did not reconcile";

  // And the reconciled backup can plan correctly: moving group 0 back is
  // one flip, not a conflict.
  auto plan = cluster_.controller(1)->SwitchesToTurn(
      {{"disk-0", 0}, {"disk-1", 0}, {"disk-2", 0}, {"disk-3", 0}});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->size(), 1u);
}

TEST_F(RobustnessTest, DiskHardwareFailureIsDetectedAndReported) {
  auto client = cluster_.MakeClient("client");
  auto volume = AllocateSync(client.get(), "svc", GiB(10));
  ASSERT_TRUE(volume.ok());
  const std::string disk = (*volume)->id().disk;

  // Blow the disk hardware: the unit drops off the USB tree; after the
  // missing-disk timeout the Master flags the space unavailable (data
  // recovery is the upper layer's job, §IV-E).
  ASSERT_TRUE(cluster_.fabric().FailUnit(disk).ok());
  cluster_.RunFor(sim::Seconds(15));

  Result<LookupResponse> lookup = InternalError("pending");
  client->Lookup((*volume)->id(),
                 [&](Result<LookupResponse> r) { lookup = r; });
  cluster_.RunFor(sim::Seconds(3));
  ASSERT_TRUE(lookup.ok());
  EXPECT_FALSE(lookup->available);

  // A failed disk is never picked for new allocations.
  for (int i = 0; i < 3; ++i) {
    auto other = AllocateSync(client.get(), "svc", GiB(10));
    ASSERT_TRUE(other.ok());
    EXPECT_NE((*other)->id().disk, disk);
  }
}

TEST_F(RobustnessTest, AllocationSpreadsAcrossDisksWhenOneFills) {
  // Exhaust one disk (3 TB) and watch the allocator move on while keeping
  // service affinity where possible.
  auto client = cluster_.MakeClient("client");
  std::set<std::string> disks_used;
  for (int i = 0; i < 4; ++i) {
    auto volume = AllocateSync(client.get(), "big-svc", TB(1));
    ASSERT_TRUE(volume.ok()) << i;
    disks_used.insert((*volume)->id().disk);
  }
  EXPECT_GE(disks_used.size(), 2u);  // 4 TB does not fit one 3 TB disk
}

TEST_F(RobustnessTest, SecondHostFailureAfterRecoveryStillWorks) {
  // Crash host 2; after failover completes, crash host 3. Both groups end
  // up served; the fabric handles sequential (non-concurrent) failures.
  auto client2 = cluster_.MakeClient("c2", 2);
  auto client3 = cluster_.MakeClient("c3", 3);
  auto v2 = AllocateSync(client2.get(), "svc2", GiB(10));
  auto v3 = AllocateSync(client3.get(), "svc3", GiB(10));
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(v3.ok());

  cluster_.CrashHost(2);
  cluster_.RunFor(sim::Seconds(30));
  EXPECT_TRUE((*v2)->mounted());
  const int host_after_first =
      cluster_.active_master()->CurrentHostOfDisk((*v2)->id().disk);
  EXPECT_NE(host_after_first, 2);

  cluster_.CrashHost(3);
  cluster_.RunFor(sim::Seconds(40));
  EXPECT_TRUE((*v3)->mounted());
  const int host_after_second =
      cluster_.active_master()->CurrentHostOfDisk((*v3)->id().disk);
  EXPECT_NE(host_after_second, 2);
  EXPECT_NE(host_after_second, 3);
}

TEST_F(RobustnessTest, ExposeTimesOutWhenDiskNeverAppears) {
  // Ask host 3's EndPoint to expose a disk that is attached elsewhere: it
  // polls, then gives up with kUnavailable after its deadline.
  net::RpcEndpoint admin(&cluster_.sim(), &cluster_.network(), "admin");
  auto request = std::make_shared<ExposeRequest>();
  request->id = SpaceId{0, "disk-0", 77};
  request->disk = "disk-0";  // attached to host 0, not host 3
  request->offset = 0;
  request->length = GiB(1);
  Status status = InternalError("pending");
  admin.Call("host-3", request, sim::Seconds(60),
             [&](Result<net::MessagePtr> r) { status = r.status(); });
  cluster_.RunFor(sim::Seconds(40));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(RobustnessTest, MetaQuorumLossBlocksAllocationButNotIo) {
  auto client = cluster_.MakeClient("client");
  auto volume = AllocateSync(client.get(), "svc", GiB(10));
  ASSERT_TRUE(volume.ok());

  // Kill two of three metadata replicas: no quorum, so persistent
  // allocation must fail...
  cluster_.meta_service(0)->Stop();
  cluster_.meta_service(1)->Stop();
  cluster_.RunFor(sim::Seconds(5));
  Result<ClientLib::Volume*> blocked = InternalError("pending");
  client->AllocateAndMount("svc", GiB(10),
                           [&](Result<ClientLib::Volume*> r) { blocked = r; });
  cluster_.RunFor(sim::Seconds(60));
  EXPECT_FALSE(blocked.ok());

  // ...but the data plane keeps serving (metadata is off the I/O path).
  Status write = InternalError("pending");
  (*volume)->Write(0, KiB(4), false, 9, [&](Status s) { write = s; });
  cluster_.RunFor(sim::Seconds(5));
  EXPECT_TRUE(write.ok());
}

TEST_F(RobustnessTest, FlakyEnumerationHealedByPowerCycle) {
  // §V-B quirk end to end: with lossy enumeration, failover still
  // completes because the 30 s verification window outlasts retries via
  // power cycle... here we exercise the manager-level recovery directly.
  sim::Simulator sim;
  fabric::FabricManager::Options options;
  options.attach_loss_probability = 0.4;
  fabric::FabricManager manager(&sim, fabric::BuildPrototypeFabric(),
                                options, Rng(99));
  sim.RunFor(sim::Seconds(10));
  // Some disks may be stuck unrecognized; power-cycle every stuck disk.
  for (fabric::NodeIndex node : manager.fabric().disks) {
    const std::string& name = manager.topology().node(node).name;
    if (manager.VisibleHostOfDisk(name) < 0) {
      ASSERT_TRUE(manager.DriveDiskPower(0, node, false).ok());
    }
  }
  sim.RunFor(sim::Seconds(2));
  for (fabric::NodeIndex node : manager.fabric().disks) {
    const std::string& name = manager.topology().node(node).name;
    if (manager.disk(name)->state() == hw::DiskState::kPoweredOff) {
      ASSERT_TRUE(manager.DriveDiskPower(0, node, true).ok());
    }
  }
  sim.RunFor(sim::Seconds(15));
  for (fabric::NodeIndex node : manager.fabric().disks) {
    const std::string& name = manager.topology().node(node).name;
    EXPECT_GE(manager.VisibleHostOfDisk(name), 0) << name;
  }
}

}  // namespace
}  // namespace ustore::core
