#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fabric/builders.h"
#include "fabric/topology.h"

namespace ustore::fabric {
namespace {

// A tiny hand-built fabric: two hosts, one hub each, one disk switchable
// between them.
//
//   host-a:p0     host-b:p0
//      |             |
//    hub-a         hub-b
//        \         /
//         sw (2:1)
//          |
//        disk-0
class TinyFabricTest : public ::testing::Test {
 protected:
  TinyFabricTest() {
    host_a_ = t_.AddHostPort("host-a:p0");
    host_b_ = t_.AddHostPort("host-b:p0");
    hub_a_ = t_.AddHub("hub-a", host_a_);
    hub_b_ = t_.AddHub("hub-b", host_b_);
    sw_ = t_.AddSwitch("sw", hub_a_, hub_b_);
    disk_ = t_.AddDisk("disk-0", sw_);
  }

  Topology t_;
  NodeIndex host_a_, host_b_, hub_a_, hub_b_, sw_, disk_;
};

TEST_F(TinyFabricTest, Validates) {
  EXPECT_TRUE(t_.Validate(kDefaultHubFanIn).ok());
}

TEST_F(TinyFabricTest, DefaultAttachesToPrimary) {
  EXPECT_EQ(t_.AttachedHostPort(disk_), host_a_);
}

TEST_F(TinyFabricTest, SwitchingMovesAttachment) {
  t_.SetSwitch(sw_, true);
  EXPECT_EQ(t_.AttachedHostPort(disk_), host_b_);
  t_.SetSwitch(sw_, false);
  EXPECT_EQ(t_.AttachedHostPort(disk_), host_a_);
}

TEST_F(TinyFabricTest, ActivePathListsComponentsInOrder) {
  auto path = t_.ActivePath(disk_);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], disk_);
  EXPECT_EQ(path[1], sw_);
  EXPECT_EQ(path[2], hub_a_);
  EXPECT_EQ(path[3], host_a_);
}

TEST_F(TinyFabricTest, FailedHubBreaksPath) {
  t_.SetFailed(hub_a_, true);
  EXPECT_EQ(t_.AttachedHostPort(disk_), kInvalidNode);
  EXPECT_TRUE(t_.ActivePath(disk_).empty());
  // But the other tree is still reachable by switching.
  t_.SetSwitch(sw_, true);
  EXPECT_EQ(t_.AttachedHostPort(disk_), host_b_);
}

TEST_F(TinyFabricTest, UnpoweredDiskDetaches) {
  t_.SetPowered(disk_, false);
  EXPECT_EQ(t_.AttachedHostPort(disk_), kInvalidNode);
}

TEST_F(TinyFabricTest, RouteToFindsSwitchSettings) {
  auto route = t_.RouteTo(disk_, host_b_);
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route->size(), 1u);
  EXPECT_EQ((*route)[0], (SwitchSetting{sw_, true}));

  route = t_.RouteTo(disk_, host_a_);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ((*route)[0], (SwitchSetting{sw_, false}));
}

TEST_F(TinyFabricTest, RouteToFailsThroughFailedComponents) {
  t_.SetFailed(hub_b_, true);
  auto route = t_.RouteTo(disk_, host_b_);
  EXPECT_FALSE(route.ok());
  EXPECT_EQ(route.status().code(), StatusCode::kNotFound);
}

TEST_F(TinyFabricTest, RouteToFailedDiskIsUnavailable) {
  t_.SetFailed(disk_, true);
  auto route = t_.RouteTo(disk_, host_a_);
  EXPECT_EQ(route.status().code(), StatusCode::kUnavailable);
}

TEST_F(TinyFabricTest, ReachableHostPorts) {
  auto hosts = t_.ReachableHostPorts(disk_);
  EXPECT_EQ(hosts.size(), 2u);
  t_.SetFailed(hub_b_, true);
  hosts = t_.ReachableHostPorts(disk_);
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], host_a_);
}

TEST_F(TinyFabricTest, TierAndUsbParent) {
  EXPECT_EQ(t_.TierOf(disk_), 1);  // one hub above it
  EXPECT_EQ(t_.UsbParentOf(disk_), hub_a_);  // the switch is invisible
  t_.SetSwitch(sw_, true);
  EXPECT_EQ(t_.UsbParentOf(disk_), hub_b_);
}

TEST_F(TinyFabricTest, FailureUnits) {
  // The disk's unit includes the switch below... above it (its uplink
  // switch); the switch's unit includes the disk.
  auto disk_unit = t_.FailureUnitOf(disk_);
  EXPECT_NE(std::find(disk_unit.begin(), disk_unit.end(), sw_),
            disk_unit.end());
  auto switch_unit = t_.FailureUnitOf(sw_);
  EXPECT_NE(std::find(switch_unit.begin(), switch_unit.end(), disk_),
            switch_unit.end());
}

TEST_F(TinyFabricTest, FindByName) {
  auto found = t_.Find("disk-0");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, disk_);
  EXPECT_FALSE(t_.Find("nonexistent").ok());
}

// --- Generation counter and path cache ---------------------------------------

TEST(TopologyGenerationTest, MutationsBumpGeneration) {
  Topology t;
  const std::uint64_t g0 = t.generation();
  NodeIndex host = t.AddHostPort("h");
  EXPECT_GT(t.generation(), g0);  // construction counts as mutation
  NodeIndex hub = t.AddHub("hub", host);
  NodeIndex hub2 = t.AddHub("hub2", host);
  NodeIndex sw = t.AddSwitch("sw", hub, hub2);
  t.AddDisk("d0", sw);

  std::uint64_t g = t.generation();
  t.SetSwitch(sw, true);
  EXPECT_GT(t.generation(), g);
  g = t.generation();
  t.SetFailed(hub, true);
  EXPECT_GT(t.generation(), g);
  g = t.generation();
  t.SetPowered(hub2, false);
  EXPECT_GT(t.generation(), g);
}

TEST(TopologyGenerationTest, NoOpMutationsKeepGeneration) {
  Topology t;
  NodeIndex host = t.AddHostPort("h");
  NodeIndex hub = t.AddHub("hub", host);
  NodeIndex hub2 = t.AddHub("hub2", host);
  NodeIndex sw = t.AddSwitch("sw", hub, hub2);
  t.SetSwitch(sw, true);
  t.SetFailed(hub, true);

  const std::uint64_t g = t.generation();
  t.SetSwitch(sw, true);    // already selected
  t.SetFailed(hub, true);   // already failed
  t.SetPowered(hub2, true); // already powered
  EXPECT_EQ(t.generation(), g);
}

TEST(TopologyGenerationTest, CachedPathTracksMutations) {
  Topology t;
  NodeIndex host_a = t.AddHostPort("a");
  NodeIndex host_b = t.AddHostPort("b");
  NodeIndex hub_a = t.AddHub("hub-a", host_a);
  NodeIndex hub_b = t.AddHub("hub-b", host_b);
  NodeIndex sw = t.AddSwitch("sw", hub_a, hub_b);
  NodeIndex disk = t.AddDisk("d0", sw);

  // Warm the cache, then mutate and confirm the cached answer follows.
  EXPECT_EQ(t.ActivePath(disk), t.WalkActivePath(disk));
  EXPECT_EQ(t.ActivePath(disk).back(), host_a);
  t.SetSwitch(sw, true);
  EXPECT_EQ(t.ActivePath(disk), t.WalkActivePath(disk));
  EXPECT_EQ(t.ActivePath(disk).back(), host_b);
  t.SetFailed(hub_b, true);
  EXPECT_EQ(t.ActivePath(disk), t.WalkActivePath(disk));
  EXPECT_TRUE(t.ActivePath(disk).empty());
  t.SetFailed(hub_b, false);
  EXPECT_EQ(t.ActivePath(disk).back(), host_b);
  // Cache survives node addition (it is resized, not corrupted).
  NodeIndex disk2 = t.AddDisk("d1", hub_a);
  EXPECT_EQ(t.ActivePath(disk2), t.WalkActivePath(disk2));
  EXPECT_EQ(t.ActivePath(disk), t.WalkActivePath(disk));
}

// --- Validation failures -----------------------------------------------------

TEST(TopologyValidationTest, RejectsIdenticalSwitchUpstreams) {
  Topology t;
  NodeIndex host = t.AddHostPort("h");
  NodeIndex hub = t.AddHub("hub", host);
  t.AddSwitch("sw", hub, hub);
  EXPECT_FALSE(t.Validate(4).ok());
}

TEST(TopologyValidationTest, RejectsExcessFanIn) {
  Topology t;
  NodeIndex host = t.AddHostPort("h");
  NodeIndex hub = t.AddHub("hub", host);
  for (int i = 0; i < 5; ++i) t.AddDisk("d" + std::to_string(i), hub);
  EXPECT_FALSE(t.Validate(4).ok());
  EXPECT_TRUE(t.Validate(5).ok());
}

TEST(TopologyValidationTest, CountsPotentialFanInThroughSwitches) {
  Topology t;
  NodeIndex host_a = t.AddHostPort("a");
  NodeIndex host_b = t.AddHostPort("b");
  NodeIndex hub_a = t.AddHub("hub-a", host_a);
  NodeIndex hub_b = t.AddHub("hub-b", host_b);
  for (int i = 0; i < 4; ++i) {
    NodeIndex sw = t.AddSwitch("sw" + std::to_string(i), hub_a, hub_b);
    t.AddDisk("d" + std::to_string(i), sw);
  }
  EXPECT_TRUE(t.Validate(4).ok());
  // A fifth switchable disk could oversubscribe either hub.
  NodeIndex sw = t.AddSwitch("sw4", hub_a, hub_b);
  t.AddDisk("d4", sw);
  EXPECT_FALSE(t.Validate(4).ok());
}

}  // namespace
}  // namespace ustore::fabric
