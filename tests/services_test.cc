// MiniDfs + Archiver on a live cluster, including the §VII-B experiment:
// switch a disk while HDFS writes — the write stalls for seconds and
// resumes, reads are never interrupted.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "fabric/failure_domains.h"
#include "services/archiver.h"
#include "services/mini_dfs.h"
#include "services/rebuild.h"
#include "services/redundancy.h"

namespace ustore::services {
namespace {

class DfsFixture : public ::testing::Test {
 protected:
  static constexpr int kDataNodes = 3;

  DfsFixture() {
    cluster_.Start();
    // One DataNode per host 1..3 with a volume allocated near that host
    // (host 0 is left as the failover target).
    std::vector<net::NodeId> dn_ids;
    for (int i = 0; i < kDataNodes; ++i) {
      dn_ids.push_back("dfs-dn-" + std::to_string(i));
    }
    for (int i = 0; i < kDataNodes; ++i) {
      auto client = cluster_.MakeClient("dn-client-" + std::to_string(i),
                                        /*locality=*/i + 1);
      Result<core::ClientLib::Volume*> volume = InternalError("pending");
      client->AllocateAndMount(
          "mini-dfs", GiB(10),
          [&](Result<core::ClientLib::Volume*> r) { volume = r; });
      cluster_.RunFor(sim::Seconds(10));
      EXPECT_TRUE(volume.ok()) << volume.status();
      datanodes_.push_back(std::make_unique<DataNode>(
          &cluster_.sim(), &cluster_.network(), dn_ids[i], *volume));
      dn_clients_.push_back(std::move(client));
      dn_volumes_.push_back(*volume);
    }
    namenode_ = std::make_unique<NameNode>(
        &cluster_.sim(), &cluster_.network(), "dfs-nn", dn_ids);
    dfs_client_ = std::make_unique<DfsClient>(
        &cluster_.sim(), &cluster_.network(), "dfs-client", "dfs-nn");
  }

  core::Cluster cluster_;
  std::vector<std::unique_ptr<core::ClientLib>> dn_clients_;
  std::vector<core::ClientLib::Volume*> dn_volumes_;
  std::vector<std::unique_ptr<DataNode>> datanodes_;
  std::unique_ptr<NameNode> namenode_;
  std::unique_ptr<DfsClient> dfs_client_;
};

TEST_F(DfsFixture, WriteThenReadVerifiesTags) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/logs/day1", 5, 1000,
                         [&](DfsClient::WriteReport r) { write = r; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(write.status.ok()) << write.status;
  EXPECT_EQ(write.transient_errors, 0);

  DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs_client_->ReadFile("/logs/day1",
                        [&](DfsClient::ReadReport r) { read = r; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(read.status.ok()) << read.status;
  ASSERT_EQ(read.tags.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(read.tags[i], 1000u + i);
  }
  EXPECT_EQ(read.replica_failovers, 0);
}

TEST_F(DfsFixture, DuplicateFileRejected) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/f", 1, 1, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(20));
  ASSERT_TRUE(write.status.ok());
  dfs_client_->WriteFile("/f", 1, 1, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(20));
  EXPECT_EQ(write.status.code(), StatusCode::kAlreadyExists);
}

TEST_F(DfsFixture, EveryBlockHasThreeReplicas) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/r", 4, 50, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(60));
  ASSERT_TRUE(write.status.ok());
  std::size_t total = 0;
  for (const auto& dn : datanodes_) total += dn->blocks_stored();
  EXPECT_EQ(total, 4u * 3u);
}

TEST_F(DfsFixture, HostFailureDuringWriteStallsSecondsThenResumes) {
  // The §VII-B experiment, with a real failure driving the switch: crash
  // the host under DataNode 0's volume mid-write; UStore moves the disk
  // and the DFS write resumes after a few seconds of retries.
  const int dn0_host = cluster_.active_master()->CurrentHostOfDisk(
      dn_volumes_[0]->id().disk);
  ASSERT_GT(dn0_host, 0);

  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  bool crashed = false;
  dfs_client_->WriteFile("/big", 24, 7000,
                         [&](DfsClient::WriteReport r) { write = r; });
  // Let a few blocks land, then yank the host.
  cluster_.RunFor(sim::Seconds(3));
  crashed = true;
  cluster_.CrashHost(dn0_host);
  cluster_.RunFor(sim::Seconds(120));

  ASSERT_TRUE(crashed);
  ASSERT_TRUE(write.status.ok()) << write.status;
  EXPECT_GT(write.transient_errors, 0);          // errors for a while...
  EXPECT_GT(write.stalled, sim::Seconds(1));     // ...a few seconds...
  EXPECT_LT(write.stalled, sim::Seconds(60));    // ...not forever.

  // And the data all round-trips afterwards.
  DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs_client_->ReadFile("/big", [&](DfsClient::ReadReport r) { read = r; });
  cluster_.RunFor(sim::Seconds(120));
  ASSERT_TRUE(read.status.ok()) << read.status;
  ASSERT_EQ(read.tags.size(), 24u);
  for (int i = 0; i < 24; ++i) EXPECT_EQ(read.tags[i], 7000u + i);
}

TEST_F(DfsFixture, ReadsFailOverToReplicasWithoutInterruption) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/replicated", 6, 300, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(60));
  ASSERT_TRUE(write.status.ok());

  // Take DataNode 0's volume host down and read immediately: the client
  // hops to another replica per block, no stall beyond the RPC timeout.
  const int dn0_host = cluster_.active_master()->CurrentHostOfDisk(
      dn_volumes_[0]->id().disk);
  cluster_.CrashHost(dn0_host);
  cluster_.RunFor(sim::MillisD(200));

  DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs_client_->ReadFile("/replicated",
                        [&](DfsClient::ReadReport r) { read = r; });
  cluster_.RunFor(sim::Seconds(60));
  ASSERT_TRUE(read.status.ok()) << read.status;
  EXPECT_EQ(read.tags.size(), 6u);
  EXPECT_GT(read.replica_failovers, 0);
}

TEST(DfsClientTest, WriteRetryExhaustionReportsAccountingAndFiresOnce) {
  // A replica that never answers: the write retries write_max_retries
  // times (stalled accumulating one retry delay per attempt), then fails
  // exactly once with the final error. Standalone sim — the NameNode
  // places the only replica on a DataNode id nobody registered, so every
  // block write times out.
  sim::Simulator sim;
  net::Network network(&sim, Rng(17));
  DfsOptions options;
  options.replication = 1;
  options.write_max_retries = 3;
  options.write_retry_delay = sim::MillisD(100);
  options.rpc_timeout = sim::MillisD(500);
  NameNode namenode(&sim, &network, "dfs-nn", {"dfs-dn-ghost"}, options);
  DfsClient client(&sim, &network, "dfs-client", "dfs-nn", options);

  int completions = 0;
  DfsClient::WriteReport report;
  report.status = InternalError("pending");
  client.WriteFile("/doomed", 1, 9000, [&](DfsClient::WriteReport r) {
    ++completions;
    report = r;
  });
  sim.RunFor(sim::Seconds(30));

  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  // Initial attempt + write_max_retries retries, each a transient error;
  // only the retried attempts wait out the delay.
  EXPECT_EQ(report.transient_errors, options.write_max_retries + 1);
  EXPECT_EQ(report.stalled,
            options.write_max_retries * options.write_retry_delay);
}

// --- Archiver -------------------------------------------------------------------

class ArchiverFixture : public ::testing::Test {
 protected:
  ArchiverFixture() {
    cluster_.Start();
    client_ = cluster_.MakeClient("archive-client");
    Result<core::ClientLib::Volume*> volume = InternalError("pending");
    client_->AllocateAndMount(
        "cold-archive", GiB(50),
        [&](Result<core::ClientLib::Volume*> r) { volume = r; });
    cluster_.RunFor(sim::Seconds(10));
    EXPECT_TRUE(volume.ok());
    volume_ = *volume;
    archiver_ =
        std::make_unique<Archiver>(client_.get(), volume_, "cold-archive");
  }

  core::Cluster cluster_;
  std::unique_ptr<core::ClientLib> client_;
  core::ClientLib::Volume* volume_ = nullptr;
  std::unique_ptr<Archiver> archiver_;
};

TEST_F(ArchiverFixture, BatchArchiveAndVerify) {
  Status status = InternalError("pending");
  archiver_->ArchiveBatch(10, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(archiver_->objects_archived(), 10u);
  EXPECT_EQ(archiver_->bytes_archived(), 10 * MiB(4));

  archiver_->VerifyBatch(0, 10, [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(30));
  EXPECT_TRUE(status.ok()) << status;
}

TEST_F(ArchiverFixture, StandbySpinsDiskDownAndBatchWakesIt) {
  Status status = InternalError("pending");
  archiver_->ArchiveBatch(2, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(20));
  ASSERT_TRUE(status.ok());

  archiver_->EnterStandby([&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(5));
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(cluster_.fabric().disk(volume_->id().disk)->state(),
            hw::DiskState::kSpunDown);

  // The next batch spins the disk up implicitly (with spin-up latency).
  const sim::Time start = cluster_.sim().now();
  archiver_->ArchiveBatch(1, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(status.ok());
  EXPECT_GT(cluster_.sim().now() - start,
            hw::DiskParams{}.spin_up_time);
}

TEST_F(ArchiverFixture, VolumeFullReportsExhaustion) {
  core::ClientLibOptions options;
  Result<core::ClientLib::Volume*> small = InternalError("pending");
  client_->AllocateAndMount("cold-archive", MiB(8),
                            [&](auto r) { small = r; });
  cluster_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(small.ok());
  Archiver tiny(client_.get(), *small, "cold-archive");
  Status status = InternalError("pending");
  tiny.ArchiveBatch(3, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(20));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.objects_archived(), 2u);
}

// --- RebuildAgent ---------------------------------------------------------------

class RebuildFixture : public ::testing::Test {
 protected:
  static constexpr Bytes kBlock = MiB(8);
  static constexpr std::uint64_t kBaseTag = 500;

  RebuildFixture() {
    cluster_.Start();
    client_ = cluster_.MakeClient("rebuild-client");
    // Source and target pinned to disks in *different* failure units, so a
    // unit fault on the source leaves the target (and its partial copy)
    // alive.
    const fabric::FailureDomainMap domains =
        fabric::EnumerateFailureDomains(cluster_.fabric().fabric());
    EXPECT_GE(domains.size(), 2);
    source_disk_ = domains.domains[0].disk_names[0];
    target_disk_ = domains.domains[1].disk_names[0];
    source_ = MountOnDisk("rebuild-src", source_disk_);
    target_ = MountOnDisk("rebuild-dst", target_disk_);
  }

  core::ClientLib::Volume* MountOnDisk(const std::string& service,
                                       const std::string& disk) {
    Result<core::ClientLib::Volume*> volume = InternalError("pending");
    client_->AllocateAndMountOnDisk(
        service, GiB(1), disk,
        [&](Result<core::ClientLib::Volume*> r) { volume = r; });
    cluster_.RunFor(sim::Seconds(10));
    EXPECT_TRUE(volume.ok()) << volume.status();
    return volume.ok() ? *volume : nullptr;
  }

  void WriteSourceBlocks(int blocks) {
    int acked = 0;
    for (int i = 0; i < blocks; ++i) {
      source_->Write(static_cast<Bytes>(i) * kBlock, kBlock,
                     /*random=*/false, kBaseTag + i, [&](Status s) {
                       EXPECT_TRUE(s.ok()) << s;
                       ++acked;
                     });
    }
    cluster_.RunFor(sim::Seconds(120));
    ASSERT_EQ(acked, blocks);
  }

  core::Cluster cluster_;
  std::unique_ptr<core::ClientLib> client_;
  std::string source_disk_;
  std::string target_disk_;
  core::ClientLib::Volume* source_ = nullptr;
  core::ClientLib::Volume* target_ = nullptr;
};

TEST_F(RebuildFixture, CopiesVerifiesAndReportsThroughput) {
  WriteSourceBlocks(6);
  RebuildAgent agent(&cluster_.sim(), source_, target_, kBlock);
  RebuildReport report;
  report.status = InternalError("pending");
  bool done = false;
  agent.Rebuild(6, [&](RebuildReport r) {
    report = r;
    done = true;
  });
  cluster_.RunFor(sim::Seconds(120));
  ASSERT_TRUE(done);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.blocks_copied, 6);
  EXPECT_EQ(report.tag_mismatches, 0);
  EXPECT_EQ(report.resume_from, 6);
  EXPECT_GT(report.elapsed, 0);
  EXPECT_TRUE(report.throughput_valid);
  EXPECT_GT(report.throughput_mbps, 0.0);

  // Every block round-trips off the target with the source's tag.
  for (int i = 0; i < 6; ++i) {
    Result<std::uint64_t> tag = InternalError("pending");
    target_->Read(static_cast<Bytes>(i) * kBlock, kBlock, /*random=*/false,
                  [&](Result<std::uint64_t> r) { tag = r; });
    cluster_.RunFor(sim::Seconds(10));
    ASSERT_TRUE(tag.ok()) << tag.status();
    EXPECT_EQ(*tag, kBaseTag + i);
  }
}

TEST_F(RebuildFixture, ReadBackMismatchIsDataLossNotProgress) {
  // The fixed rebuild.cc bug: the source tag used to be captured and then
  // never compared. A corrupted write must now surface as a *distinct*
  // kDataLoss status, be counted, and the bad block must not be progress.
  WriteSourceBlocks(6);
  RebuildAgent agent(&cluster_.sim(), source_, target_, kBlock);
  agent.CorruptWriteForTest(3);
  RebuildReport report;
  report.status = InternalError("pending");
  bool done = false;
  agent.Rebuild(6, [&](RebuildReport r) {
    report = r;
    done = true;
  });
  cluster_.RunFor(sim::Seconds(120));
  ASSERT_TRUE(done);
  EXPECT_EQ(report.status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(report.tag_mismatches, 1);
  EXPECT_EQ(report.blocks_copied, 3);  // blocks 0..2 verified; 3 is not
  EXPECT_EQ(report.resume_from, 3);
  EXPECT_GT(report.elapsed, 0);
}

TEST_F(RebuildFixture, ZeroBlockRebuildIsExplicitNotStalled) {
  // A rebuild with nothing to copy used to be indistinguishable from a
  // stalled one (both reported 0 MB/s). Now progress and rate are separate:
  // blocks_copied says what happened, throughput_valid says whether the
  // rate means anything.
  RebuildAgent agent(&cluster_.sim(), source_, target_, kBlock);
  RebuildReport report;
  report.status = InternalError("pending");
  bool done = false;
  agent.Rebuild(0, [&](RebuildReport r) {
    report = r;
    done = true;
  });
  cluster_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(done);
  EXPECT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.blocks_copied, 0);
  EXPECT_EQ(report.resume_from, 0);
  EXPECT_EQ(report.elapsed, 0);
  EXPECT_FALSE(report.throughput_valid);
  EXPECT_EQ(report.throughput_mbps, 0.0);
}

TEST_F(RebuildFixture, SourceUnitFailureReportsPartialProgressAndResumes) {
  constexpr int kBlocks = 64;
  WriteSourceBlocks(kBlocks);
  RebuildAgent agent(&cluster_.sim(), source_, target_, kBlock);
  RebuildReport report;
  report.status = InternalError("pending");
  bool done = false;
  agent.Rebuild(kBlocks, [&](RebuildReport r) {
    report = r;
    done = true;
  });
  // Yank the source disk's failure unit mid-copy.
  cluster_.sim().Schedule(sim::Seconds(1), [&] {
    const Status failed = cluster_.fabric().FailUnit(source_disk_);
    EXPECT_TRUE(failed.ok()) << failed;
  });
  cluster_.RunFor(sim::Seconds(300));
  ASSERT_TRUE(done);
  ASSERT_FALSE(report.status.ok());
  EXPECT_GT(report.blocks_copied, 0);          // partial progress reported
  EXPECT_LT(report.blocks_copied, kBlocks);
  EXPECT_EQ(report.resume_from, report.blocks_copied);
  EXPECT_EQ(report.tag_mismatches, 0);

  // Repair the unit and resume from the reported block: the copy finishes
  // without redoing verified work.
  ASSERT_TRUE(cluster_.fabric().RepairUnit(source_disk_).ok());
  cluster_.RunFor(sim::Seconds(60));  // remount settles
  RebuildReport resumed;
  resumed.status = InternalError("pending");
  done = false;
  agent.RebuildFrom(report.resume_from, kBlocks, [&](RebuildReport r) {
    resumed = r;
    done = true;
  });
  cluster_.RunFor(sim::Seconds(300));
  ASSERT_TRUE(done);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status;
  EXPECT_EQ(resumed.blocks_copied, kBlocks - report.resume_from);
  EXPECT_EQ(resumed.resume_from, kBlocks);

  // Blocks on both sides of the resume point round-trip.
  for (int i : {0, report.resume_from - 1, report.resume_from, kBlocks - 1}) {
    Result<std::uint64_t> tag = InternalError("pending");
    target_->Read(static_cast<Bytes>(i) * kBlock, kBlock, /*random=*/false,
                  [&](Result<std::uint64_t> r) { tag = r; });
    cluster_.RunFor(sim::Seconds(10));
    ASSERT_TRUE(tag.ok()) << tag.status();
    EXPECT_EQ(*tag, kBaseTag + i);
  }
}

// --- RebuildEngine over Master-placed stripes ------------------------------------

// A live cluster with RS(2+1) stripes allocated through the Master, every
// chunk tagged with the invertible stripe code, plus a client-side layout
// replica whose plan drives the RebuildEngine. Not a gtest fixture so the
// determinism test can spin up two identical worlds side by side.
class StripeWorld {
 public:
  static constexpr Bytes kChunk = MiB(1);
  static constexpr int kData = 2;
  static constexpr int kParity = 1;
  static constexpr int kStripes = 6;
  static constexpr std::uint64_t kGenBase = 9000;

  StripeWorld() : map_(MakeOptions()) {
    cluster_.Start();
    client_ = cluster_.MakeClient("ec-client");
    for (int s = 0; s < kStripes; ++s) {
      Result<core::ClientLib::StripeVolumes> stripe =
          InternalError("pending");
      client_->AllocateStripe(
          "ec", kChunk, kData, kParity,
          [&](Result<core::ClientLib::StripeVolumes> r) { stripe = r; });
      cluster_.RunFor(sim::Seconds(10));
      EXPECT_TRUE(stripe.ok()) << stripe.status();
      if (stripe.ok()) stripes_.push_back(*stripe);
    }
    int acked = 0;
    for (int s = 0; s < kStripes; ++s) {
      for (int c = 0; c < kData + kParity; ++c) {
        stripes_[s].chunks[c]->Write(
            0, kChunk, /*random=*/false,
            redundancy::ChunkTag(kGenBase + s, c), [&](Status status) {
              EXPECT_TRUE(status.ok()) << status;
              ++acked;
            });
      }
    }
    cluster_.RunFor(sim::Seconds(60));
    EXPECT_EQ(acked, kStripes * (kData + kParity));

    // The client-side layout replica the plan is computed against; its
    // dense locations are mapped onto the mounted volumes by the resolver.
    map_.layout().AddDomains(4, 4);
    EXPECT_TRUE(map_.AppendMany(kStripes).ok());
  }

  static fabric::PlacementOptions MakeOptions() {
    fabric::PlacementOptions options;
    options.data_chunks = kData;
    options.parity_chunks = kParity;
    options.seed = 77;
    return options;
  }

  // Busiest layout disk — the failure that exposes the most chunks.
  int BusiestDisk() const {
    int best = 0;
    for (int d = 1; d < map_.layout().disks(); ++d) {
      if (map_.ChunksOnDisk(d).size() > map_.ChunksOnDisk(best).size()) {
        best = d;
      }
    }
    return best;
  }

  // Plans (and applies) the rebuild of BusiestDisk(), then allocates one
  // spare volume per affected stripe.
  redundancy::RebuildPlan PlanAndPrepare() {
    failed_disk_ = BusiestDisk();
    Result<redundancy::RebuildPlan> plan =
        redundancy::PlanRebuild(map_, failed_disk_, /*apply=*/true);
    EXPECT_TRUE(plan.ok()) << plan.status();
    for (const redundancy::RebuildStripeOp& op : plan->ops) {
      Result<core::ClientLib::Volume*> spare = InternalError("pending");
      client_->AllocateAndMount(
          "ec-spare", MiB(4),
          [&](Result<core::ClientLib::Volume*> r) { spare = r; });
      cluster_.RunFor(sim::Seconds(10));
      EXPECT_TRUE(spare.ok()) << spare.status();
      if (spare.ok()) spares_[op.stripe] = *spare;
    }
    return *plan;
  }

  RebuildEngine::ChunkResolver MakeResolver(
      const redundancy::RebuildPlan& plan) {
    std::map<std::uint64_t, int> lost;
    for (const redundancy::RebuildStripeOp& op : plan.ops) {
      lost[op.stripe] = op.lost_chunk;
    }
    return [this, lost](std::uint64_t stripe, int chunk,
                        const fabric::ChunkLocation&) {
      auto it = lost.find(stripe);
      if (it != lost.end() && chunk == it->second) {
        return RebuildEngine::ChunkAddress{spares_.at(stripe), 0};
      }
      return RebuildEngine::ChunkAddress{
          stripes_[static_cast<std::size_t>(stripe)].chunks[chunk], 0};
    };
  }

  RebuildEngineReport Execute(const redundancy::RebuildPlan& plan,
                              int first_op = 0,
                              std::uint64_t corrupt_stripe = ~0ULL) {
    RebuildEngineOptions options;
    options.chunk_size = kChunk;
    options.total_disks = map_.layout().disks();
    RebuildEngine engine(&cluster_.sim(), &map_, options, MakeResolver(plan));
    if (corrupt_stripe != ~0ULL) {
      engine.CorruptSpareWriteForTest(corrupt_stripe);
    }
    RebuildEngineReport report;
    report.status = InternalError("pending");
    bool done = false;
    engine.ExecuteFrom(first_op, plan, [&](RebuildEngineReport r) {
      report = r;
      done = true;
    });
    cluster_.RunFor(sim::Seconds(300));
    EXPECT_TRUE(done);
    return report;
  }

  core::Cluster cluster_;
  std::unique_ptr<core::ClientLib> client_;
  std::vector<core::ClientLib::StripeVolumes> stripes_;
  std::map<std::uint64_t, core::ClientLib::Volume*> spares_;
  redundancy::StripeMap map_;
  int failed_disk_ = -1;
};

TEST(StripeRebuild, MasterPlacementSeparatesFailureDomains) {
  StripeWorld world;
  core::Master* master = world.cluster_.active_master();
  ASSERT_NE(master, nullptr);
  EXPECT_EQ(master->stripe_count(),
            static_cast<std::size_t>(StripeWorld::kStripes));
  EXPECT_GE(master->failure_domain_count(),
            StripeWorld::kData + StripeWorld::kParity);
  for (const core::ClientLib::StripeVolumes& stripe : world.stripes_) {
    ASSERT_EQ(stripe.chunks.size(),
              static_cast<std::size_t>(StripeWorld::kData +
                                       StripeWorld::kParity));
    ASSERT_EQ(stripe.domains.size(), stripe.chunks.size());
    for (std::size_t a = 0; a < stripe.domains.size(); ++a) {
      for (std::size_t b = a + 1; b < stripe.domains.size(); ++b) {
        EXPECT_NE(stripe.domains[a], stripe.domains[b])
            << "stripe " << stripe.stripe_id
            << " put two chunks in one failure domain";
      }
    }
    const std::vector<core::SpaceId>* spaces =
        master->StripeChunks(stripe.stripe_id);
    ASSERT_NE(spaces, nullptr);
    EXPECT_EQ(spaces->size(), stripe.chunks.size());
  }
  std::string why;
  EXPECT_TRUE(master->CheckIndexesForTest(&why)) << why;
}

TEST(StripeRebuild, EngineRebuildsEveryChunkOfAFailedDisk) {
  StripeWorld world;
  const redundancy::RebuildPlan plan = world.PlanAndPrepare();
  const int ops = static_cast<int>(plan.ops.size());
  ASSERT_GT(ops, 0);

  const RebuildEngineReport report = world.Execute(plan);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.stripes_total, ops);
  EXPECT_EQ(report.stripes_rebuilt, ops);
  EXPECT_EQ(report.chunk_reads, StripeWorld::kData * ops);
  EXPECT_EQ(report.chunk_writes, ops);
  EXPECT_EQ(report.tag_mismatches, 0);
  EXPECT_EQ(report.read_failovers, 0);
  EXPECT_EQ(report.resume_from, ops);
  EXPECT_TRUE(report.throughput_valid);
  EXPECT_TRUE(CheckRebuildResumable(report).ok());

  // Each spare chunk now holds exactly the lost chunk's tag.
  for (const redundancy::RebuildStripeOp& op : plan.ops) {
    Result<std::uint64_t> tag = InternalError("pending");
    world.spares_.at(op.stripe)
        ->Read(0, StripeWorld::kChunk, /*random=*/false,
               [&](Result<std::uint64_t> r) { tag = r; });
    world.cluster_.RunFor(sim::Seconds(10));
    ASSERT_TRUE(tag.ok()) << tag.status();
    EXPECT_EQ(*tag, redundancy::ChunkTag(StripeWorld::kGenBase + op.stripe,
                                         op.lost_chunk));
  }
  // The applied plan drained the failed disk in the layout replica.
  EXPECT_TRUE(world.map_.ChunksOnDisk(world.failed_disk_).empty());
}

TEST(StripeRebuild, CorruptSpareWriteIsDataLossAndRunResumes) {
  StripeWorld world;
  const redundancy::RebuildPlan plan = world.PlanAndPrepare();
  ASSERT_GT(plan.ops.size(), 0u);

  // Corrupt the first op's spare write: the verify read-back must trip,
  // fail the run with a distinct status, and leave an exact resume point.
  const RebuildEngineReport report =
      world.Execute(plan, /*first_op=*/0,
                    /*corrupt_stripe=*/plan.ops.front().stripe);
  ASSERT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kDataLoss);
  EXPECT_GE(report.tag_mismatches, 1);
  EXPECT_LT(report.stripes_rebuilt, report.stripes_total);
  EXPECT_TRUE(CheckRebuildResumable(report).ok());

  // A clean engine resumes from the reported op and finishes the rebuild.
  const RebuildEngineReport resumed = world.Execute(plan, report.resume_from);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status;
  EXPECT_EQ(resumed.stripes_rebuilt, resumed.stripes_total);
  EXPECT_EQ(resumed.resume_from, static_cast<int>(plan.ops.size()));
}

TEST(StripeRebuild, ReportIsIdenticalAcrossIdenticalWorlds) {
  // The acceptance bar: the engine report is a pure function of (options,
  // volumes, fault schedule) — two identical clusters produce identical
  // reports, sim-time stamps included.
  auto run = [] {
    StripeWorld world;
    const redundancy::RebuildPlan plan = world.PlanAndPrepare();
    return world.Execute(plan);
  };
  const RebuildEngineReport a = run();
  const RebuildEngineReport b = run();
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.stripes_total, b.stripes_total);
  EXPECT_EQ(a.stripes_rebuilt, b.stripes_rebuilt);
  EXPECT_EQ(a.chunk_reads, b.chunk_reads);
  EXPECT_EQ(a.chunk_writes, b.chunk_writes);
  EXPECT_EQ(a.tag_mismatches, b.tag_mismatches);
  EXPECT_EQ(a.read_failovers, b.read_failovers);
  EXPECT_EQ(a.admission_stalls, b.admission_stalls);
  EXPECT_EQ(a.resume_from, b.resume_from);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
}

}  // namespace
}  // namespace ustore::services
