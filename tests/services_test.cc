// MiniDfs + Archiver on a live cluster, including the §VII-B experiment:
// switch a disk while HDFS writes — the write stalls for seconds and
// resumes, reads are never interrupted.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cluster.h"
#include "services/archiver.h"
#include "services/mini_dfs.h"

namespace ustore::services {
namespace {

class DfsFixture : public ::testing::Test {
 protected:
  static constexpr int kDataNodes = 3;

  DfsFixture() {
    cluster_.Start();
    // One DataNode per host 1..3 with a volume allocated near that host
    // (host 0 is left as the failover target).
    std::vector<net::NodeId> dn_ids;
    for (int i = 0; i < kDataNodes; ++i) {
      dn_ids.push_back("dfs-dn-" + std::to_string(i));
    }
    for (int i = 0; i < kDataNodes; ++i) {
      auto client = cluster_.MakeClient("dn-client-" + std::to_string(i),
                                        /*locality=*/i + 1);
      Result<core::ClientLib::Volume*> volume = InternalError("pending");
      client->AllocateAndMount(
          "mini-dfs", GiB(10),
          [&](Result<core::ClientLib::Volume*> r) { volume = r; });
      cluster_.RunFor(sim::Seconds(10));
      EXPECT_TRUE(volume.ok()) << volume.status();
      datanodes_.push_back(std::make_unique<DataNode>(
          &cluster_.sim(), &cluster_.network(), dn_ids[i], *volume));
      dn_clients_.push_back(std::move(client));
      dn_volumes_.push_back(*volume);
    }
    namenode_ = std::make_unique<NameNode>(
        &cluster_.sim(), &cluster_.network(), "dfs-nn", dn_ids);
    dfs_client_ = std::make_unique<DfsClient>(
        &cluster_.sim(), &cluster_.network(), "dfs-client", "dfs-nn");
  }

  core::Cluster cluster_;
  std::vector<std::unique_ptr<core::ClientLib>> dn_clients_;
  std::vector<core::ClientLib::Volume*> dn_volumes_;
  std::vector<std::unique_ptr<DataNode>> datanodes_;
  std::unique_ptr<NameNode> namenode_;
  std::unique_ptr<DfsClient> dfs_client_;
};

TEST_F(DfsFixture, WriteThenReadVerifiesTags) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/logs/day1", 5, 1000,
                         [&](DfsClient::WriteReport r) { write = r; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(write.status.ok()) << write.status;
  EXPECT_EQ(write.transient_errors, 0);

  DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs_client_->ReadFile("/logs/day1",
                        [&](DfsClient::ReadReport r) { read = r; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(read.status.ok()) << read.status;
  ASSERT_EQ(read.tags.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(read.tags[i], 1000u + i);
  }
  EXPECT_EQ(read.replica_failovers, 0);
}

TEST_F(DfsFixture, DuplicateFileRejected) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/f", 1, 1, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(20));
  ASSERT_TRUE(write.status.ok());
  dfs_client_->WriteFile("/f", 1, 1, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(20));
  EXPECT_EQ(write.status.code(), StatusCode::kAlreadyExists);
}

TEST_F(DfsFixture, EveryBlockHasThreeReplicas) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/r", 4, 50, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(60));
  ASSERT_TRUE(write.status.ok());
  std::size_t total = 0;
  for (const auto& dn : datanodes_) total += dn->blocks_stored();
  EXPECT_EQ(total, 4u * 3u);
}

TEST_F(DfsFixture, HostFailureDuringWriteStallsSecondsThenResumes) {
  // The §VII-B experiment, with a real failure driving the switch: crash
  // the host under DataNode 0's volume mid-write; UStore moves the disk
  // and the DFS write resumes after a few seconds of retries.
  const int dn0_host = cluster_.active_master()->CurrentHostOfDisk(
      dn_volumes_[0]->id().disk);
  ASSERT_GT(dn0_host, 0);

  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  bool crashed = false;
  dfs_client_->WriteFile("/big", 24, 7000,
                         [&](DfsClient::WriteReport r) { write = r; });
  // Let a few blocks land, then yank the host.
  cluster_.RunFor(sim::Seconds(3));
  crashed = true;
  cluster_.CrashHost(dn0_host);
  cluster_.RunFor(sim::Seconds(120));

  ASSERT_TRUE(crashed);
  ASSERT_TRUE(write.status.ok()) << write.status;
  EXPECT_GT(write.transient_errors, 0);          // errors for a while...
  EXPECT_GT(write.stalled, sim::Seconds(1));     // ...a few seconds...
  EXPECT_LT(write.stalled, sim::Seconds(60));    // ...not forever.

  // And the data all round-trips afterwards.
  DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs_client_->ReadFile("/big", [&](DfsClient::ReadReport r) { read = r; });
  cluster_.RunFor(sim::Seconds(120));
  ASSERT_TRUE(read.status.ok()) << read.status;
  ASSERT_EQ(read.tags.size(), 24u);
  for (int i = 0; i < 24; ++i) EXPECT_EQ(read.tags[i], 7000u + i);
}

TEST_F(DfsFixture, ReadsFailOverToReplicasWithoutInterruption) {
  DfsClient::WriteReport write;
  write.status = InternalError("pending");
  dfs_client_->WriteFile("/replicated", 6, 300, [&](auto r) { write = r; });
  cluster_.RunFor(sim::Seconds(60));
  ASSERT_TRUE(write.status.ok());

  // Take DataNode 0's volume host down and read immediately: the client
  // hops to another replica per block, no stall beyond the RPC timeout.
  const int dn0_host = cluster_.active_master()->CurrentHostOfDisk(
      dn_volumes_[0]->id().disk);
  cluster_.CrashHost(dn0_host);
  cluster_.RunFor(sim::MillisD(200));

  DfsClient::ReadReport read;
  read.status = InternalError("pending");
  dfs_client_->ReadFile("/replicated",
                        [&](DfsClient::ReadReport r) { read = r; });
  cluster_.RunFor(sim::Seconds(60));
  ASSERT_TRUE(read.status.ok()) << read.status;
  EXPECT_EQ(read.tags.size(), 6u);
  EXPECT_GT(read.replica_failovers, 0);
}

TEST(DfsClientTest, WriteRetryExhaustionReportsAccountingAndFiresOnce) {
  // A replica that never answers: the write retries write_max_retries
  // times (stalled accumulating one retry delay per attempt), then fails
  // exactly once with the final error. Standalone sim — the NameNode
  // places the only replica on a DataNode id nobody registered, so every
  // block write times out.
  sim::Simulator sim;
  net::Network network(&sim, Rng(17));
  DfsOptions options;
  options.replication = 1;
  options.write_max_retries = 3;
  options.write_retry_delay = sim::MillisD(100);
  options.rpc_timeout = sim::MillisD(500);
  NameNode namenode(&sim, &network, "dfs-nn", {"dfs-dn-ghost"}, options);
  DfsClient client(&sim, &network, "dfs-client", "dfs-nn", options);

  int completions = 0;
  DfsClient::WriteReport report;
  report.status = InternalError("pending");
  client.WriteFile("/doomed", 1, 9000, [&](DfsClient::WriteReport r) {
    ++completions;
    report = r;
  });
  sim.RunFor(sim::Seconds(30));

  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  // Initial attempt + write_max_retries retries, each a transient error;
  // only the retried attempts wait out the delay.
  EXPECT_EQ(report.transient_errors, options.write_max_retries + 1);
  EXPECT_EQ(report.stalled,
            options.write_max_retries * options.write_retry_delay);
}

// --- Archiver -------------------------------------------------------------------

class ArchiverFixture : public ::testing::Test {
 protected:
  ArchiverFixture() {
    cluster_.Start();
    client_ = cluster_.MakeClient("archive-client");
    Result<core::ClientLib::Volume*> volume = InternalError("pending");
    client_->AllocateAndMount(
        "cold-archive", GiB(50),
        [&](Result<core::ClientLib::Volume*> r) { volume = r; });
    cluster_.RunFor(sim::Seconds(10));
    EXPECT_TRUE(volume.ok());
    volume_ = *volume;
    archiver_ =
        std::make_unique<Archiver>(client_.get(), volume_, "cold-archive");
  }

  core::Cluster cluster_;
  std::unique_ptr<core::ClientLib> client_;
  core::ClientLib::Volume* volume_ = nullptr;
  std::unique_ptr<Archiver> archiver_;
};

TEST_F(ArchiverFixture, BatchArchiveAndVerify) {
  Status status = InternalError("pending");
  archiver_->ArchiveBatch(10, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(archiver_->objects_archived(), 10u);
  EXPECT_EQ(archiver_->bytes_archived(), 10 * MiB(4));

  archiver_->VerifyBatch(0, 10, [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(30));
  EXPECT_TRUE(status.ok()) << status;
}

TEST_F(ArchiverFixture, StandbySpinsDiskDownAndBatchWakesIt) {
  Status status = InternalError("pending");
  archiver_->ArchiveBatch(2, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(20));
  ASSERT_TRUE(status.ok());

  archiver_->EnterStandby([&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(5));
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(cluster_.fabric().disk(volume_->id().disk)->state(),
            hw::DiskState::kSpunDown);

  // The next batch spins the disk up implicitly (with spin-up latency).
  const sim::Time start = cluster_.sim().now();
  archiver_->ArchiveBatch(1, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(30));
  ASSERT_TRUE(status.ok());
  EXPECT_GT(cluster_.sim().now() - start,
            hw::DiskParams{}.spin_up_time);
}

TEST_F(ArchiverFixture, VolumeFullReportsExhaustion) {
  core::ClientLibOptions options;
  Result<core::ClientLib::Volume*> small = InternalError("pending");
  client_->AllocateAndMount("cold-archive", MiB(8),
                            [&](auto r) { small = r; });
  cluster_.RunFor(sim::Seconds(10));
  ASSERT_TRUE(small.ok());
  Archiver tiny(client_.get(), *small, "cold-archive");
  Status status = InternalError("pending");
  tiny.ArchiveBatch(3, MiB(4), [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(20));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tiny.objects_archived(), 2u);
}

}  // namespace
}  // namespace ustore::services
