#include <gtest/gtest.h>

#include <set>

#include "fabric/builders.h"

namespace ustore::fabric {
namespace {

// --- Prototype (Fig. 2 right) ---------------------------------------------------

TEST(PrototypeFabricTest, StructureMatchesPaper) {
  BuiltFabric f = BuildPrototypeFabric();
  EXPECT_EQ(f.hosts.size(), 4u);
  EXPECT_EQ(f.disks.size(), 16u);
  EXPECT_EQ(f.hubs.size(), 8u);       // 4 leaf + 4 mid
  EXPECT_EQ(f.switches.size(), 8u);   // 4 leaf-uplink + 4 mid-uplink
  EXPECT_EQ(f.host_ports.size(), 8u); // p0 + p1 per host
  EXPECT_TRUE(f.topology.Validate(kDefaultHubFanIn).ok());
}

TEST(PrototypeFabricTest, DefaultRoutingIsBalanced) {
  BuiltFabric f = BuildPrototypeFabric();
  for (int h = 0; h < 4; ++h) {
    EXPECT_EQ(f.DisksAttachedToHost(h).size(), 4u) << "host " << h;
  }
}

TEST(PrototypeFabricTest, DiskPathHasTwoHubsTwoSwitches) {
  // §VII-A: "The disk goes through two hubs, two switches and a bridge."
  BuiltFabric f = BuildPrototypeFabric();
  const auto path = f.topology.ActivePath(f.disks[0]);
  int hubs = 0, switches = 0;
  for (NodeIndex i : path) {
    if (f.topology.node(i).kind == NodeKind::kHub) ++hubs;
    if (f.topology.node(i).kind == NodeKind::kSwitch) ++switches;
  }
  EXPECT_EQ(hubs, 2);
  EXPECT_EQ(switches, 2);
  EXPECT_EQ(f.topology.TierOf(f.disks[0]), 2);
}

TEST(PrototypeFabricTest, EveryDiskCanReachMultipleHosts) {
  BuiltFabric f = BuildPrototypeFabric();
  for (NodeIndex disk : f.disks) {
    std::set<int> hosts;
    for (NodeIndex port : f.topology.ReachableHostPorts(disk)) {
      hosts.insert(f.host_of_port.at(port));
    }
    EXPECT_GE(hosts.size(), 2u)
        << "disk " << f.topology.node(disk).name;
  }
}

TEST(PrototypeFabricTest, HostFailureLeavesAllDisksRoutable) {
  // Single host failure tolerance: after failing both ports of any host,
  // every disk still has a route to some live host.
  for (int dead = 0; dead < 4; ++dead) {
    BuiltFabric f = BuildPrototypeFabric();
    for (NodeIndex port : f.PortsOfHost(dead)) {
      f.topology.SetFailed(port, true);
    }
    for (NodeIndex disk : f.disks) {
      EXPECT_FALSE(f.topology.ReachableHostPorts(disk).empty())
          << "disk " << f.topology.node(disk).name << " with host " << dead
          << " down";
    }
  }
}

TEST(PrototypeFabricTest, MidHubFailureIsTolerated) {
  BuiltFabric f = BuildPrototypeFabric();
  auto mid = f.topology.Find("midhub-0");
  ASSERT_TRUE(mid.ok());
  f.topology.SetFailed(*mid, true);
  for (NodeIndex disk : f.disks) {
    EXPECT_FALSE(f.topology.ReachableHostPorts(disk).empty());
  }
}

TEST(PrototypeFabricTest, LeafHubFailureLosesOnlyItsDisks) {
  // The documented trade-off of the right-hand design (§IV-E).
  BuiltFabric f = BuildPrototypeFabric();
  auto leaf = f.topology.Find("leafhub-0");
  ASSERT_TRUE(leaf.ok());
  f.topology.SetFailed(*leaf, true);
  int unreachable = 0;
  for (NodeIndex disk : f.disks) {
    if (f.topology.ReachableHostPorts(disk).empty()) ++unreachable;
  }
  EXPECT_EQ(unreachable, 4);
}

TEST(PrototypeFabricTest, FailoverKeepsDeviceCountUnderQuirkLimit) {
  // After a host failure, the adopting host sees at most 12 devices
  // (2 mid hubs + 2 leaf hubs + 8 disks) — below the 15-device limit.
  BuiltFabric f = BuildPrototypeFabric();
  // Move group 0 to host 1's backup port: flip swm-0.
  auto swm0 = f.topology.Find("swm-0");
  ASSERT_TRUE(swm0.ok());
  f.topology.SetSwitch(*swm0, true);
  // All of group 0 now lands on host 1.
  EXPECT_EQ(f.DisksAttachedToHost(1).size(), 8u);
  int devices_on_host1 = 0;
  for (NodeIndex i = 0; i < f.topology.size(); ++i) {
    const NodeKind kind = f.topology.node(i).kind;
    if (kind != NodeKind::kHub && kind != NodeKind::kDisk) continue;
    const NodeIndex port = f.topology.AttachedHostPort(i);
    if (port != kInvalidNode && f.host_of_port.at(port) == 1) {
      ++devices_on_host1;
    }
  }
  EXPECT_EQ(devices_on_host1, 12);
  EXPECT_LE(devices_on_host1, 15);
}

TEST(PrototypeFabricTest, ScalesToLargerGroups) {
  BuiltFabric f = BuildPrototypeFabric({.groups = 8, .disks_per_leaf = 4});
  EXPECT_EQ(f.disks.size(), 32u);
  EXPECT_EQ(f.hosts.size(), 8u);
  EXPECT_TRUE(f.topology.Validate(kDefaultHubFanIn).ok());
  for (int h = 0; h < 8; ++h) {
    EXPECT_EQ(f.DisksAttachedToHost(h).size(), 4u);
  }
}

// --- Leaf-switched (Fig. 2 left) ---------------------------------------------------

TEST(LeafSwitchedFabricTest, Structure) {
  BuiltFabric f = BuildLeafSwitchedFabric({.disks = 16});
  EXPECT_EQ(f.hosts.size(), 2u);
  EXPECT_EQ(f.disks.size(), 16u);
  EXPECT_EQ(f.switches.size(), 16u);  // one per disk
  EXPECT_EQ(f.hubs.size(), 10u);      // (4 leaf + 1 root) per tree
  EXPECT_TRUE(f.topology.Validate(kDefaultHubFanIn).ok());
}

TEST(LeafSwitchedFabricTest, DefaultAllOnHostZero) {
  BuiltFabric f = BuildLeafSwitchedFabric({.disks = 16});
  EXPECT_EQ(f.DisksAttachedToHost(0).size(), 16u);
}

TEST(LeafSwitchedFabricTest, AnySingleHubFailureTolerated) {
  // The paper's claim for the left design: "can tolerate not only failures
  // of a single host, but also any single failure of the hubs."
  BuiltFabric base = BuildLeafSwitchedFabric({.disks = 16});
  for (NodeIndex hub : base.hubs) {
    BuiltFabric f = BuildLeafSwitchedFabric({.disks = 16});
    f.topology.SetFailed(hub, true);
    for (NodeIndex disk : f.disks) {
      EXPECT_FALSE(f.topology.ReachableHostPorts(disk).empty())
          << "hub " << f.topology.node(hub).name;
    }
  }
}

TEST(LeafSwitchedFabricTest, IndividualDiskSwitching) {
  BuiltFabric f = BuildLeafSwitchedFabric({.disks = 16});
  // Move just disk 5 to host 1.
  auto sw = f.topology.Find("swd-5");
  ASSERT_TRUE(sw.ok());
  f.topology.SetSwitch(*sw, true);
  EXPECT_EQ(f.DisksAttachedToHost(0).size(), 15u);
  EXPECT_EQ(f.DisksAttachedToHost(1).size(), 1u);
}

TEST(LeafSwitchedFabricTest, OddDiskCounts) {
  BuiltFabric f = BuildLeafSwitchedFabric({.disks = 7});
  EXPECT_EQ(f.disks.size(), 7u);
  EXPECT_TRUE(f.topology.Validate(kDefaultHubFanIn).ok());
  EXPECT_EQ(f.DisksAttachedToHost(0).size(), 7u);
}

// --- Single-host tree --------------------------------------------------------------

TEST(SingleHostTreeTest, TwelveDisksStayWithinDeviceLimit) {
  BuiltFabric f = BuildSingleHostTree({.disks = 12});
  EXPECT_EQ(f.hubs.size(), 3u);
  EXPECT_EQ(f.disks.size() + f.hubs.size(), 15u);  // the §V-B boundary
  EXPECT_TRUE(f.topology.Validate(kDefaultHubFanIn).ok());
  EXPECT_EQ(f.DisksAttachedToHost(0).size(), 12u);
}

TEST(SingleHostTreeTest, NoSwitchesNoFaultTolerance) {
  BuiltFabric f = BuildSingleHostTree({.disks = 8});
  EXPECT_TRUE(f.switches.empty());
  auto hub = f.topology.Find("hub-0");
  ASSERT_TRUE(hub.ok());
  f.topology.SetFailed(*hub, true);
  int unreachable = 0;
  for (NodeIndex disk : f.disks) {
    if (f.topology.ReachableHostPorts(disk).empty()) ++unreachable;
  }
  EXPECT_EQ(unreachable, 4);
}

// --- BOM ----------------------------------------------------------------------------

TEST(BomTest, CountsComponents) {
  FabricBom bom = CountBom(BuildPrototypeFabric());
  EXPECT_EQ(bom.hubs, 8);
  EXPECT_EQ(bom.switches, 8);
  EXPECT_EQ(bom.bridges, 16);
  EXPECT_EQ(bom.host_ports, 8);
}

TEST(BomTest, RightDesignCheaperThanLeft) {
  // The point of Fig. 2 right: fewer switches for the same disks.
  FabricBom right = CountBom(BuildPrototypeFabric());
  FabricBom left = CountBom(BuildLeafSwitchedFabric({.disks = 16}));
  EXPECT_LT(right.switches, left.switches);
}

}  // namespace
}  // namespace ustore::fabric
