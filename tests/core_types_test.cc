#include <gtest/gtest.h>

#include "core/types.h"

namespace ustore::core {
namespace {

TEST(SpaceIdTest, ToStringFormat) {
  SpaceId id{0, "disk-3", 7};
  EXPECT_EQ(id.ToString(), "/u0/disk-3/7");
}

TEST(SpaceIdTest, ParseRoundTrip) {
  SpaceId id{12, "disk-15", 42};
  auto parsed = SpaceId::Parse(id.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, id);
}

TEST(SpaceIdTest, ParseRejectsGarbage) {
  for (const std::string& bad :
       {"", "/", "/u", "/u0", "/u0/disk-1", "/ux/disk-1/2", "/u0//3",
        "/u0/disk-1/x", "u0/disk-1/2", "/u0/disk-1/2/3x"}) {
    EXPECT_FALSE(SpaceId::Parse(bad).ok()) << "input: " << bad;
  }
}

TEST(SpaceIdTest, Ordering) {
  SpaceId a{0, "disk-1", 1};
  SpaceId b{0, "disk-1", 2};
  SpaceId c{0, "disk-2", 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace ustore::core
