// Assorted coverage: network byte accounting, message wire sizes, USB tree
// report contents, heartbeat payloads, and disk-model decomposition
// properties across a request-size sweep.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/cluster.h"
#include "hw/disk_model.h"
#include "iscsi/iscsi.h"
#include "net/network.h"
#include "net/rpc.h"

namespace ustore {
namespace {

// --- Network byte accounting -----------------------------------------------------

struct SizedMsg : net::Message {
  explicit SizedMsg(Bytes s) : size(s) {}
  Bytes size;
  Bytes wire_size() const override { return size; }
};

struct Sink : net::Node {
  void HandleMessage(const net::NodeId&, const net::MessagePtr&) override {}
};

TEST(NetworkAccountingTest, BytesBetweenTracksBothDirections) {
  sim::Simulator sim;
  net::Network network(&sim, Rng(1));
  Sink a, b, c;
  network.Register("a", &a);
  network.Register("b", &b);
  network.Register("c", &c);
  network.Send("a", "b", std::make_shared<SizedMsg>(1000));
  network.Send("b", "a", std::make_shared<SizedMsg>(500));
  network.Send("a", "c", std::make_shared<SizedMsg>(200));
  sim.Run();
  EXPECT_EQ(network.bytes_between("a", "b"), 1500);
  EXPECT_EQ(network.bytes_between("b", "a"), 1500);
  EXPECT_EQ(network.bytes_between("a", "c"), 200);
  EXPECT_EQ(network.bytes_between("b", "c"), 0);
  EXPECT_EQ(network.bytes_delivered(), 1700);
}

TEST(NetworkAccountingTest, DroppedMessagesNotCounted) {
  sim::Simulator sim;
  net::Network network(&sim, Rng(1));
  Sink a;
  network.Register("a", &a);
  network.Send("a", "ghost", std::make_shared<SizedMsg>(1000));
  sim.Run();
  EXPECT_EQ(network.bytes_delivered(), 0);
}

// --- Wire sizes -------------------------------------------------------------------

TEST(WireSizeTest, IscsiWriteCarriesPayloadOutbound) {
  iscsi::IoRequest write;
  write.is_read = false;
  write.length = MiB(4);
  EXPECT_GE(write.wire_size(), MiB(4));
  iscsi::IoRequest read;
  read.is_read = true;
  read.length = MiB(4);
  EXPECT_LT(read.wire_size(), KiB(1));  // request is small...
  iscsi::IoResponse response;
  response.payload = MiB(4);
  EXPECT_GE(response.wire_size(), MiB(4));  // ...the response carries data
}

TEST(WireSizeTest, RpcWrapperAddsEnvelope) {
  auto inner = std::make_shared<SizedMsg>(1000);
  net::RpcRequest request;
  request.payload = inner;
  EXPECT_GT(request.wire_size(), 1000);
}

// --- Heartbeat / USB report contents ------------------------------------------------

TEST(EndPointReportingTest, HeartbeatListsRecognizedDisksWithStates) {
  core::Cluster cluster;
  cluster.Start();
  // Spin one disk down; the master's view follows the heartbeat.
  cluster.fabric().disk("disk-9")->SpinDown();
  cluster.RunFor(sim::Seconds(2));
  core::Master* master = cluster.active_master();
  ASSERT_NE(master, nullptr);
  EXPECT_EQ(master->CurrentHostOfDisk("disk-9"), 2);
  // (State propagation is visible through the master's accessors in the
  // cluster tests; here we confirm the mapping stays fresh.)
  EXPECT_EQ(master->CurrentHostOfDisk("disk-0"), 0);
}

TEST(EndPointReportingTest, UsbTreeReportShapesMatchFabric) {
  sim::Simulator sim;
  fabric::FabricManager manager(&sim, fabric::BuildPrototypeFabric(),
                                fabric::FabricManager::Options{}, Rng(2));
  sim.RunFor(sim::Seconds(8));
  hw::UsbTreeReport report = manager.host_stack(0)->TreeReport();
  // Host 0 sees: midhub-0 (tier 1), leafhub-0 (tier 2), 4 disks (tier 2).
  int hubs = 0, disk_count = 0;
  for (const auto& entry : report) {
    if (entry.is_hub) {
      ++hubs;
    } else {
      ++disk_count;
      EXPECT_EQ(entry.parent, "leafhub-0");
      EXPECT_EQ(entry.tier, 2);
    }
  }
  EXPECT_EQ(hubs, 2);
  EXPECT_EQ(disk_count, 4);
}

// --- Disk-model decomposition sweep -------------------------------------------------

class DiskModelSweepTest : public ::testing::TestWithParam<Bytes> {};

TEST_P(DiskModelSweepTest, ServiceTimeDecomposesAdditively) {
  const Bytes size = GetParam();
  const hw::DiskModel sata(hw::DiskParams{}, hw::SataInterface());
  const hw::DiskModel usb(hw::DiskParams{}, hw::UsbBridgeInterface());
  for (auto dir : {hw::IoDirection::kRead, hw::IoDirection::kWrite}) {
    hw::IoRequest seq{size, dir, hw::AccessPattern::kSequential};
    hw::IoRequest rnd{size, dir, hw::AccessPattern::kRandom};
    // Random = sequential + positioning (same direction, no switch).
    const sim::Duration seq_t = sata.ServiceTime(seq, dir);
    const sim::Duration rnd_t = sata.ServiceTime(rnd, dir);
    EXPECT_GT(rnd_t, seq_t);
    // The USB interface only changes overheads, not media transfer: the
    // difference between USB and SATA sequential times is size-independent
    // for reads (pure command overhead).
    if (dir == hw::IoDirection::kRead) {
      const sim::Duration delta =
          usb.ServiceTime(seq, dir) - sata.ServiceTime(seq, dir);
      EXPECT_NEAR(static_cast<double>(delta),
                  static_cast<double>(sim::MicrosD(164.4) -
                                      sim::MicrosD(53)),
                  1000.0)
          << "size " << size;
    }
  }
}

TEST_P(DiskModelSweepTest, ThroughputBoundedByMediaRate) {
  const Bytes size = GetParam();
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  for (double rf : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    for (auto pattern :
         {hw::AccessPattern::kSequential, hw::AccessPattern::kRandom}) {
      auto result = model.Evaluate({size, rf, pattern});
      EXPECT_GT(result.bytes_per_sec, 0.0);
      EXPECT_LE(result.bytes_per_sec, MBps(186.0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DiskModelSweepTest,
                         ::testing::Values(KiB(4), KiB(16), KiB(64),
                                           KiB(256), MiB(1), MiB(4),
                                           MiB(16)));

// --- Simulator determinism across full clusters --------------------------------------

TEST(DeterminismTest, IdenticalClustersProduceIdenticalTimelines) {
  auto run = [] {
    core::ClusterOptions options;
    options.seed = 2024;
    core::Cluster cluster(options);
    cluster.Start();
    auto client = cluster.MakeClient("d-client", 1);
    core::ClientLib::Volume* volume = nullptr;
    client->AllocateAndMount("svc", GiB(10),
                             [&](Result<core::ClientLib::Volume*> r) {
                               if (r.ok()) volume = *r;
                             });
    cluster.RunFor(sim::Seconds(10));
    cluster.CrashHost(1);
    cluster.RunFor(sim::Seconds(30));
    return volume != nullptr && volume->mounted()
               ? volume->last_remounted_at()
               : -1;
  };
  const sim::Time a = run();
  const sim::Time b = run();
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b) << "simulation is not deterministic";
}

}  // namespace
}  // namespace ustore
