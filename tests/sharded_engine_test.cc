// sim::ShardQueue / sim::ShardedEngine unit tests: arena queue mechanics,
// epoch/lookahead semantics, mailbox flush ordering, and raw-engine
// determinism across shard and thread counts. The model-level bit-identity
// contract (reports, metric JSON, trace digests vs the single-queue
// oracle) lives in sharded_unit_test.cc.
#include "sim/sharded.h"

#include <atomic>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace ustore::sim {
namespace {

TEST(ShardQueueTest, FiresInTimeThenSeqOrder) {
  ShardQueue q;
  std::vector<int> order;
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(3); });  // ties break by schedule order
  q.ScheduleAt(30, [&] { order.push_back(4); });
  q.RunUntilBound(25, UINT64_MAX);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntilBound(31, UINT64_MAX);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.events_processed(), 4u);
}

TEST(ShardQueueTest, BoundIsExclusive) {
  ShardQueue q;
  int fired = 0;
  q.ScheduleAt(100, [&] { ++fired; });
  q.RunUntilBound(100, UINT64_MAX);  // events strictly before the bound
  EXPECT_EQ(fired, 0);
  q.RunUntilBound(101, UINT64_MAX);
  EXPECT_EQ(fired, 1);
}

TEST(ShardQueueTest, CancelRemovesPendingEvent) {
  ShardQueue q;
  int fired = 0;
  const EventId id = q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { fired += 10; });
  q.Cancel(id);
  q.Cancel(id);  // double-cancel is a no-op
  q.RunUntilBound(100, UINT64_MAX);
  EXPECT_EQ(fired, 10);
  // A stale id must not cancel the slot's new tenant.
  const EventId id2 = q.ScheduleAt(30, [&] { fired += 100; });
  (void)id2;
  q.Cancel(id);
  q.RunUntilBound(100, UINT64_MAX);
  EXPECT_EQ(fired, 110);
}

TEST(ShardQueueTest, CallbackMayScheduleIntoSameEpoch) {
  ShardQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] {
    order.push_back(1);
    q.ScheduleAt(15, [&] { order.push_back(2); });
  });
  q.RunUntilBound(20, UINT64_MAX);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ShardQueueTest, ArenaSurvivesHeavyChurn) {
  // Enough live events to span many chunks, with interleaved cancels, so
  // slot reuse and chunk growth both happen under load.
  ShardQueue q;
  std::uint64_t fired = 0;
  std::vector<EventId> ids;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3000; ++i) {
      ids.push_back(q.ScheduleAt(round * 100 + i % 7, [&] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) q.Cancel(ids[i]);
    ids.clear();
    q.RunUntilBound(round * 100 + 50, UINT64_MAX);
  }
  q.RunUntilBound(INT64_MAX, UINT64_MAX);
  EXPECT_EQ(fired, 10u * 2000u);
}

TEST(ShardedEngineTest, LocalEventsRunAndClockAdvances) {
  ShardedEngine engine({.shards = 2, .threads = 1, .lookahead = Millis(1)});
  std::vector<std::string> log;
  engine.Schedule(0, Micros(10), [&] { log.push_back("a@0"); });
  engine.Schedule(1, Micros(5), [&] { log.push_back("b@1"); });
  engine.Run(UINT64_MAX);
  EXPECT_EQ(engine.events_processed(), 2u);
  EXPECT_EQ(engine.now(0), Micros(10));
  EXPECT_EQ(engine.now(1), Micros(5));
}

TEST(ShardedEngineTest, PostDeliversAtOddNanosecondAfterLookahead) {
  ShardedEngine engine({.shards = 2, .threads = 1, .lookahead = Micros(100)});
  Time delivered_at = -1;
  engine.Schedule(0, Micros(10), [&] {
    engine.Post(0, 1, 0, [&] { delivered_at = engine.now(1); });
  });
  engine.Run(UINT64_MAX);
  // now(0)=10us + lookahead 100us = 110000ns (even) -> rounded to 110001.
  EXPECT_EQ(delivered_at, Micros(110) + 1);
  EXPECT_EQ(engine.cross_posts(), 1u);
  EXPECT_GE(engine.epochs(), 2u);
}

TEST(ShardedEngineTest, DelaysBelowLookaheadAreClampedUp) {
  ShardedEngine engine({.shards = 2, .threads = 1, .lookahead = Micros(50)});
  Time delivered_at = -1;
  engine.Schedule(0, 0, [&] {
    engine.Post(0, 1, Micros(10), [&] { delivered_at = engine.now(1); });
  });
  engine.Run(UINT64_MAX);
  EXPECT_EQ(delivered_at, Micros(50) | 1);
}

TEST(ShardedEngineTest, PingPongAcrossShards) {
  ShardedEngine engine({.shards = 2, .threads = 1, .lookahead = Micros(10)});
  int hops = 0;
  std::function<void(int)> hop = [&](int at_shard) {
    if (++hops >= 20) return;
    engine.Post(at_shard, 1 - at_shard, 0,
                [&hop, at_shard] { hop(1 - at_shard); });
  };
  engine.Schedule(0, 0, [&] { hop(0); });
  engine.Run(UINT64_MAX);
  EXPECT_EQ(hops, 20);
  EXPECT_EQ(engine.cross_posts(), 19u);
  // 1 seed + 19 deliveries.
  EXPECT_EQ(engine.events_processed(), 20u);
}

TEST(ShardedEngineTest, SameSourceDeliveriesPreserveFifoOrder) {
  ShardedEngine engine({.shards = 2, .threads = 1, .lookahead = Micros(10)});
  std::vector<int> order;
  engine.Schedule(0, 0, [&] {
    // Same source, same delivery time: FIFO by post order.
    engine.Post(0, 1, 0, [&] { order.push_back(1); });
    engine.Post(0, 1, 0, [&] { order.push_back(2); });
    engine.Post(0, 1, 0, [&] { order.push_back(3); });
  });
  engine.Run(UINT64_MAX);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedEngineTest, MaxEventsGuardStopsRunawayLoop) {
  ShardedEngine engine({.shards = 1, .threads = 1, .lookahead = Micros(1)});
  std::function<void()> forever = [&] { engine.Schedule(0, 1, forever); };
  engine.Schedule(0, 0, forever);
  engine.Run(1000);
  EXPECT_GE(engine.events_processed(), 1000u);
  EXPECT_LT(engine.events_processed(), 1100u);  // overshoot bounded by epoch
}

// The raw-engine determinism harness: a seeded random mesh of local
// events and cross-shard posts, where every handler appends to a
// per-shard log (per-shard state only — the commutativity contract).
// The concatenated per-shard logs must be identical at every thread
// count for a fixed shard count.
std::vector<std::string> RunMesh(int shards, int threads,
                                 std::uint64_t seed) {
  ShardedEngine engine(
      {.shards = shards, .threads = threads, .lookahead = Micros(20)});
  std::vector<std::string> logs(shards);
  std::vector<std::uint64_t> rngs(shards);
  for (int s = 0; s < shards; ++s) rngs[s] = seed + 0x9e3779b97f4a7c15ULL * s;
  auto next = [](std::uint64_t& x) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  std::function<void(int, int)> work = [&](int shard, int depth) {
    logs[shard] += std::to_string(engine.now(shard)) + ";";
    if (depth >= 6) return;
    const std::uint64_t r = next(rngs[shard]);
    if (r % 3 == 0) {
      const int to = static_cast<int>(r / 3 % shards);
      engine.Post(shard, to, static_cast<Duration>(r % 1000),
                  [&work, to, depth] { work(to, depth + 1); });
    } else {
      // Keep local times even so they cannot tie with odd deliveries.
      engine.Schedule(shard, static_cast<Duration>((r % 1000) * 2),
                      [&work, shard, depth] { work(shard, depth + 1); });
    }
  };
  for (int s = 0; s < shards; ++s) {
    engine.Schedule(s, Micros(s + 1), [&work, s] { work(s, 0); });
  }
  engine.Run(UINT64_MAX);
  return logs;
}

TEST(ShardedEngineTest, MeshIdenticalAcrossThreadCounts) {
  for (const int shards : {1, 2, 4, 8}) {
    const std::vector<std::string> baseline = RunMesh(shards, 1, 1234);
    for (const int threads : {2, 4, 8}) {
      EXPECT_EQ(RunMesh(shards, threads, 1234), baseline)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedEngineTest, ThreadPoolActuallyRunsShardsOnWorkers) {
  ShardedEngine engine({.shards = 4, .threads = 4, .lookahead = Micros(10)});
  std::atomic<int> fired{0};
  for (int s = 0; s < 4; ++s) {
    engine.Schedule(s, Micros(1), [&] {
      fired.fetch_add(1, std::memory_order_relaxed);
    });
  }
  engine.Run(UINT64_MAX);
  EXPECT_EQ(fired.load(), 4);
  EXPECT_EQ(engine.threads(), 4);
}

}  // namespace
}  // namespace ustore::sim
