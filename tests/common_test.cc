#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace ustore {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("disk d3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "disk d3");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: disk d3");
}

TEST(StatusTest, AllErrorConstructorsProduceDistinctCodes) {
  std::vector<Status> statuses = {
      NotFoundError(""),       AlreadyExistsError(""),
      InvalidArgumentError(""), FailedPreconditionError(""),
      UnavailableError(""),    DeadlineExceededError(""),
      ConflictError(""),       AbortedError(""),
      ResourceExhaustedError(""), InternalError(""),
  };
  std::set<StatusCode> codes;
  for (const auto& s : statuses) {
    EXPECT_FALSE(s.ok());
    codes.insert(s.code());
  }
  EXPECT_EQ(codes.size(), statuses.size());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = UnavailableError("down");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// --- Units -------------------------------------------------------------------

TEST(UnitsTest, SizeHelpers) {
  EXPECT_EQ(KiB(4), 4096);
  EXPECT_EQ(MiB(1), 1048576);
  EXPECT_EQ(TB(3), 3'000'000'000'000LL);
  EXPECT_EQ(PB(10), 10'000'000'000'000'000LL);
}

TEST(UnitsTest, RateHelpers) {
  EXPECT_DOUBLE_EQ(MBps(300), 3e8);
  EXPECT_DOUBLE_EQ(ToMBps(MBps(123.4)), 123.4);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(KiB(4)), "4.0 KiB");
  EXPECT_EQ(FormatBytes(MiB(4)), "4.0 MiB");
  EXPECT_EQ(FormatBytes(TB(3)), "3.0 TB");
  EXPECT_EQ(FormatBytes(512), "512 B");
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(23);
  Rng child_a = a.Fork();
  Rng b(23);
  Rng child_b = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
  }
}

// --- Logging -------------------------------------------------------------------

TEST(LoggingTest, RespectsThresholdAndSink) {
  auto& logger = Logger::Instance();
  std::vector<std::pair<LogLevel, std::string>> lines;
  logger.set_sink([&](LogLevel level, const std::string& message) {
    lines.emplace_back(level, message);
  });
  logger.set_threshold(LogLevel::kWarning);

  USTORE_LOG(Info) << "hidden";
  USTORE_LOG(Warning) << "shown " << 42;
  USTORE_LOG(Error) << "also shown";

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].second, "shown 42");
  EXPECT_EQ(lines[1].first, LogLevel::kError);

  logger.set_sink(nullptr);
}

}  // namespace
}  // namespace ustore
