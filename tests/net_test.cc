#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace ustore::net {
namespace {

struct TestMsg : Message {
  explicit TestMsg(int v, Bytes size = 256) : value(v), size(size) {}
  int value;
  Bytes size;
  Bytes wire_size() const override { return size; }
};

struct EchoRequest : Message {
  explicit EchoRequest(int v) : value(v) {}
  int value;
};
struct EchoResponse : Message {
  explicit EchoResponse(int v) : value(v) {}
  int value;
};

class Recorder : public Node {
 public:
  void HandleMessage(const NodeId& from, const MessagePtr& msg) override {
    received.emplace_back(from, std::static_pointer_cast<TestMsg>(msg)->value);
  }
  std::vector<std::pair<NodeId, int>> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_, Rng(42)) {}
  sim::Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  Recorder receiver;
  net_.Register("a", &receiver);
  net_.Register("b", &receiver);
  LinkParams link;
  link.latency = sim::Millis(5);
  link.bandwidth = MBps(1000);
  net_.set_default_link(link);

  net_.Send("a", "b", std::make_shared<TestMsg>(7, 0 + 256));
  sim_.Run();
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].second, 7);
  EXPECT_GE(sim_.now(), sim::Millis(5));
}

TEST_F(NetworkTest, BandwidthSerializesLargeMessages) {
  Recorder receiver;
  net_.Register("a", &receiver);
  net_.Register("b", &receiver);
  LinkParams link;
  link.latency = 0;
  link.bandwidth = MBps(100);  // 10 ms per MB
  net_.set_default_link(link);

  // Two 1 MB messages back to back: second finishes at ~20 ms.
  net_.Send("a", "b", std::make_shared<TestMsg>(1, 1'000'000));
  net_.Send("a", "b", std::make_shared<TestMsg>(2, 1'000'000));
  sim_.Run();
  ASSERT_EQ(receiver.received.size(), 2u);
  EXPECT_NEAR(sim::ToMillis(sim_.now()), 20.0, 0.5);
}

TEST_F(NetworkTest, DropsToUnknownNode) {
  Recorder receiver;
  net_.Register("a", &receiver);
  net_.Send("a", "ghost", std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_EQ(net_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, DownNodeDropsTraffic) {
  Recorder receiver;
  net_.Register("a", &receiver);
  net_.Register("b", &receiver);
  net_.SetNodeDown("b", true);
  net_.Send("a", "b", std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_TRUE(receiver.received.empty());

  net_.SetNodeDown("b", false);
  net_.Send("a", "b", std::make_shared<TestMsg>(2));
  sim_.Run();
  EXPECT_EQ(receiver.received.size(), 1u);
}

TEST_F(NetworkTest, CrashWhileInFlightDropsMessage) {
  Recorder receiver;
  net_.Register("a", &receiver);
  net_.Register("b", &receiver);
  LinkParams link;
  link.latency = sim::Millis(10);
  net_.set_default_link(link);
  net_.Send("a", "b", std::make_shared<TestMsg>(1));
  sim_.Schedule(sim::Millis(1), [&] { net_.SetNodeDown("b", true); });
  sim_.Run();
  EXPECT_TRUE(receiver.received.empty());
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  Recorder receiver;
  net_.Register("a", &receiver);
  net_.Register("b", &receiver);
  net_.SetPartitioned("a", "b", true);
  net_.Send("a", "b", std::make_shared<TestMsg>(1));
  net_.Send("b", "a", std::make_shared<TestMsg>(2));
  sim_.Run();
  EXPECT_TRUE(receiver.received.empty());

  net_.SetPartitioned("a", "b", false);
  net_.Send("a", "b", std::make_shared<TestMsg>(3));
  sim_.Run();
  EXPECT_EQ(receiver.received.size(), 1u);
}

TEST_F(NetworkTest, LossyLinkDropsSomeMessages) {
  Recorder receiver;
  net_.Register("a", &receiver);
  net_.Register("b", &receiver);
  LinkParams link;
  link.loss_probability = 0.5;
  net_.set_default_link(link);
  for (int i = 0; i < 200; ++i) {
    net_.Send("a", "b", std::make_shared<TestMsg>(i));
  }
  sim_.Run();
  EXPECT_GT(receiver.received.size(), 50u);
  EXPECT_LT(receiver.received.size(), 150u);
}

// --- RPC ---------------------------------------------------------------------

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : net_(&sim_, Rng(42)),
        server_(&sim_, &net_, "server"),
        client_(&sim_, &net_, "client") {}

  sim::Simulator sim_;
  Network net_;
  RpcEndpoint server_;
  RpcEndpoint client_;
};

TEST_F(RpcTest, RoundTrip) {
  server_.RegisterHandler<EchoRequest>(
      [](const NodeId&, MessagePtr req,
         std::function<void(Result<MessagePtr>)> reply) {
        auto* echo = static_cast<EchoRequest*>(req.get());
        reply(MessagePtr(std::make_shared<EchoResponse>(echo->value * 2)));
      });

  int got = 0;
  client_.Call("server", std::make_shared<EchoRequest>(21), sim::Seconds(1),
               [&](Result<MessagePtr> result) {
                 ASSERT_TRUE(result.ok());
                 got = static_cast<EchoResponse*>(result->get())->value;
               });
  sim_.Run();
  EXPECT_EQ(got, 42);
}

TEST_F(RpcTest, DeferredReply) {
  server_.RegisterHandler<EchoRequest>(
      [this](const NodeId&, MessagePtr req,
             std::function<void(Result<MessagePtr>)> reply) {
        auto* echo = static_cast<EchoRequest*>(req.get());
        sim_.Schedule(sim::Millis(50), [reply, value = echo->value] {
          reply(MessagePtr(std::make_shared<EchoResponse>(value + 1)));
        });
      });

  int got = 0;
  client_.Call("server", std::make_shared<EchoRequest>(1), sim::Seconds(1),
               [&](Result<MessagePtr> result) {
                 ASSERT_TRUE(result.ok());
                 got = static_cast<EchoResponse*>(result->get())->value;
               });
  sim_.Run();
  EXPECT_EQ(got, 2);
  EXPECT_GE(sim_.now(), sim::Millis(50));
}

TEST_F(RpcTest, TimeoutWhenServerDown) {
  net_.SetNodeDown("server", true);
  Status status;
  client_.Call("server", std::make_shared<EchoRequest>(1), sim::Millis(100),
               [&](Result<MessagePtr> result) { status = result.status(); });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NEAR(sim::ToMillis(sim_.now()), 100.0, 1.0);
}

TEST_F(RpcTest, UnhandledRequestTypeFails) {
  Status status;
  client_.Call("server", std::make_shared<EchoRequest>(1), sim::Seconds(1),
               [&](Result<MessagePtr> result) { status = result.status(); });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(RpcTest, HandlerErrorPropagates) {
  server_.RegisterHandler<EchoRequest>(
      [](const NodeId&, MessagePtr,
         std::function<void(Result<MessagePtr>)> reply) {
        reply(NotFoundError("no such disk"));
      });
  Status status;
  client_.Call("server", std::make_shared<EchoRequest>(1), sim::Seconds(1),
               [&](Result<MessagePtr> result) { status = result.status(); });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, NotifyDelivery) {
  int got = 0;
  server_.RegisterNotifyHandler<EchoRequest>(
      [&](const NodeId& from, MessagePtr msg) {
        EXPECT_EQ(from, "client");
        got = static_cast<EchoRequest*>(msg.get())->value;
      });
  client_.Notify("server", std::make_shared<EchoRequest>(5));
  sim_.Run();
  EXPECT_EQ(got, 5);
}

TEST_F(RpcTest, ShutdownDropsPendingCallbacks) {
  server_.RegisterHandler<EchoRequest>(
      [this](const NodeId&, MessagePtr,
             std::function<void(Result<MessagePtr>)> reply) {
        sim_.Schedule(sim::Seconds(10), [reply] {
          reply(MessagePtr(std::make_shared<EchoResponse>(0)));
        });
      });
  bool callback_fired = false;
  client_.Call("server", std::make_shared<EchoRequest>(1), sim::Seconds(30),
               [&](Result<MessagePtr>) { callback_fired = true; });
  sim_.Schedule(sim::Millis(10), [&] { client_.Shutdown(); });
  sim_.Run();
  EXPECT_FALSE(callback_fired);
}

TEST_F(RpcTest, LateResponseAfterTimeoutIsIgnored) {
  server_.RegisterHandler<EchoRequest>(
      [this](const NodeId&, MessagePtr,
             std::function<void(Result<MessagePtr>)> reply) {
        sim_.Schedule(sim::Seconds(5), [reply] {
          reply(MessagePtr(std::make_shared<EchoResponse>(9)));
        });
      });
  int callbacks = 0;
  Status first_status;
  client_.Call("server", std::make_shared<EchoRequest>(1), sim::Millis(100),
               [&](Result<MessagePtr> result) {
                 ++callbacks;
                 first_status = result.status();
               });
  sim_.Run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(first_status.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace ustore::net
