// Validates the calibrated disk/interface service-time model against the
// paper's Table II (single-disk throughput for SATA and USB-bridge
// connections) and checks model invariants.
#include <gtest/gtest.h>

#include <string>

#include "hw/disk_model.h"

namespace ustore::hw {
namespace {

struct TableIICase {
  const char* iface;     // "sata" or "usb"
  Bytes size;
  AccessPattern pattern;
  double read_fraction;
  double paper_value;    // IO/s for 4KB rows, MB/s for 4MB rows
  bool value_is_iops;
};

// Every cell of Table II.
const TableIICase kTableII[] = {
    // 4KB sequential (IO/s)
    {"sata", KiB(4), AccessPattern::kSequential, 1.0, 13378, true},
    {"sata", KiB(4), AccessPattern::kSequential, 0.5, 8066, true},
    {"sata", KiB(4), AccessPattern::kSequential, 0.0, 11211, true},
    {"usb", KiB(4), AccessPattern::kSequential, 1.0, 5380, true},
    {"usb", KiB(4), AccessPattern::kSequential, 0.5, 4294, true},
    {"usb", KiB(4), AccessPattern::kSequential, 0.0, 6166, true},
    // 4KB random (IO/s)
    {"sata", KiB(4), AccessPattern::kRandom, 1.0, 191.9, true},
    {"sata", KiB(4), AccessPattern::kRandom, 0.5, 105.4, true},
    {"sata", KiB(4), AccessPattern::kRandom, 0.0, 86.9, true},
    {"usb", KiB(4), AccessPattern::kRandom, 1.0, 189.0, true},
    {"usb", KiB(4), AccessPattern::kRandom, 0.5, 105.2, true},
    {"usb", KiB(4), AccessPattern::kRandom, 0.0, 85.2, true},
    // 4MB sequential (MB/s)
    {"sata", MiB(4), AccessPattern::kSequential, 1.0, 184.8, false},
    {"sata", MiB(4), AccessPattern::kSequential, 0.5, 105.7, false},
    {"sata", MiB(4), AccessPattern::kSequential, 0.0, 180.2, false},
    {"usb", MiB(4), AccessPattern::kSequential, 1.0, 185.8, false},
    {"usb", MiB(4), AccessPattern::kSequential, 0.5, 119.7, false},
    {"usb", MiB(4), AccessPattern::kSequential, 0.0, 184.0, false},
    // 4MB random (MB/s)
    {"sata", MiB(4), AccessPattern::kRandom, 1.0, 129.1, false},
    {"sata", MiB(4), AccessPattern::kRandom, 0.5, 78.7, false},
    {"sata", MiB(4), AccessPattern::kRandom, 0.0, 57.5, false},
    {"usb", MiB(4), AccessPattern::kRandom, 1.0, 147.9, false},
    {"usb", MiB(4), AccessPattern::kRandom, 0.5, 95.5, false},
    {"usb", MiB(4), AccessPattern::kRandom, 0.0, 79.3, false},
};

DiskModel MakeModel(const std::string& iface) {
  return DiskModel(DiskParams{},
                   iface == "sata" ? SataInterface() : UsbBridgeInterface());
}

class TableIITest : public ::testing::TestWithParam<TableIICase> {};

TEST_P(TableIITest, MatchesPaperWithinTolerance) {
  const TableIICase& c = GetParam();
  DiskModel model = MakeModel(c.iface);
  WorkloadSpec spec{c.size, c.read_fraction, c.pattern};
  auto result = model.Evaluate(spec);
  const double measured =
      c.value_is_iops ? result.iops : ToMBps(result.bytes_per_sec);
  // Calibration target: every cell within 6% of the published number.
  EXPECT_NEAR(measured / c.paper_value, 1.0, 0.06)
      << c.iface << " size=" << c.size << " rf=" << c.read_fraction
      << " measured=" << measured << " paper=" << c.paper_value;
}

INSTANTIATE_TEST_SUITE_P(AllCells, TableIITest, ::testing::ValuesIn(kTableII));

// --- Structural properties of the model --------------------------------------

TEST(DiskModelTest, HubAndSwitchPathEqualsPlainUsb) {
  // Table II's H&S column matches the USB column: hubs and switches add no
  // per-command cost in the model (their effect is shared-bandwidth only).
  // This test documents that the USB interface params are used for both.
  DiskModel usb = MakeModel("usb");
  WorkloadSpec spec{KiB(4), 1.0, AccessPattern::kSequential};
  auto a = usb.Evaluate(spec);
  auto b = usb.Evaluate(spec);
  EXPECT_DOUBLE_EQ(a.iops, b.iops);
}

TEST(DiskModelTest, SataBeatsUsbOnSmallSequential) {
  WorkloadSpec spec{KiB(4), 1.0, AccessPattern::kSequential};
  const double sata = MakeModel("sata").Evaluate(spec).iops;
  const double usb = MakeModel("usb").Evaluate(spec).iops;
  EXPECT_GT(sata / usb, 2.0);  // the paper's "2 times better"
}

TEST(DiskModelTest, UsbBeatsSataOnLargeRandom) {
  // Bridge read-ahead hides track-switch cost (Table II, 4MB random).
  WorkloadSpec spec{MiB(4), 1.0, AccessPattern::kRandom};
  const double sata = ToMBps(MakeModel("sata").Evaluate(spec).bytes_per_sec);
  const double usb = ToMBps(MakeModel("usb").Evaluate(spec).bytes_per_sec);
  EXPECT_GT(usb, sata);
}

TEST(DiskModelTest, LargeSequentialParityAcrossInterfaces) {
  WorkloadSpec spec{MiB(4), 1.0, AccessPattern::kSequential};
  const double sata = ToMBps(MakeModel("sata").Evaluate(spec).bytes_per_sec);
  const double usb = ToMBps(MakeModel("usb").Evaluate(spec).bytes_per_sec);
  EXPECT_NEAR(usb / sata, 1.0, 0.03);
}

TEST(DiskModelTest, ServiceTimeMonotonicInSize) {
  DiskModel model = MakeModel("sata");
  sim::Duration prev = 0;
  for (Bytes size : {KiB(4), KiB(64), MiB(1), MiB(4), MiB(16)}) {
    IoRequest req{size, IoDirection::kRead, AccessPattern::kSequential};
    sim::Duration t = model.ServiceTime(req, IoDirection::kRead);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DiskModelTest, RandomSlowerThanSequential) {
  DiskModel model = MakeModel("sata");
  for (Bytes size : {KiB(4), MiB(4)}) {
    for (IoDirection dir : {IoDirection::kRead, IoDirection::kWrite}) {
      IoRequest seq{size, dir, AccessPattern::kSequential};
      IoRequest rnd{size, dir, AccessPattern::kRandom};
      EXPECT_GT(model.ServiceTime(rnd, dir), model.ServiceTime(seq, dir));
    }
  }
}

TEST(DiskModelTest, DirectionSwitchCostsExtra) {
  DiskModel model = MakeModel("sata");
  IoRequest req{KiB(4), IoDirection::kWrite, AccessPattern::kSequential};
  EXPECT_GT(model.ServiceTime(req, IoDirection::kRead),
            model.ServiceTime(req, IoDirection::kWrite));
}

TEST(DiskModelTest, EvaluateConsistentWithServiceTimePureStreams) {
  DiskModel model = MakeModel("usb");
  for (auto pattern : {AccessPattern::kSequential, AccessPattern::kRandom}) {
    WorkloadSpec spec{KiB(4), 1.0, pattern};
    IoRequest req{KiB(4), IoDirection::kRead, pattern};
    const double per_io =
        static_cast<double>(model.ServiceTime(req, IoDirection::kRead));
    EXPECT_NEAR(model.Evaluate(spec).iops, 1e9 / per_io, 1.0);
  }
}

TEST(DiskModelTest, MixPenaltyPeaksAtHalf) {
  DiskModel model = MakeModel("sata");
  auto iops = [&](double rf) {
    return model.Evaluate({KiB(4), rf, AccessPattern::kSequential}).iops;
  };
  // Throughput at 50% mix is lower than the interpolation of the pure
  // streams (the Table II dip).
  const double interpolated = (iops(1.0) + iops(0.0)) / 2.0;
  EXPECT_LT(iops(0.5), interpolated);
  // And read fraction sweep has no discontinuities at the edges.
  EXPECT_NEAR(iops(0.999), iops(1.0), iops(1.0) * 0.05);
}

TEST(DiskModelTest, BytesPerSecMatchesIopsTimesSize) {
  DiskModel model = MakeModel("sata");
  WorkloadSpec spec{MiB(4), 0.5, AccessPattern::kRandom};
  auto result = model.Evaluate(spec);
  EXPECT_DOUBLE_EQ(result.bytes_per_sec,
                   result.iops * static_cast<double>(MiB(4)));
}

}  // namespace
}  // namespace ustore::hw
