#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace ustore::sim {
namespace {

TEST(TimeTest, Constructors) {
  EXPECT_EQ(Seconds(2), 2'000'000'000);
  EXPECT_EQ(Millis(3), 3'000'000);
  EXPECT_EQ(Micros(5), 5'000);
  EXPECT_EQ(SecondsD(1.5), 1'500'000'000);
  EXPECT_EQ(MillisD(0.25), 250'000);
  EXPECT_EQ(MicrosD(0.5), 500);
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToMicros(Micros(9)), 9.0);
}

TEST(TimeTest, Format) { EXPECT_EQ(FormatTime(Seconds(2)), "2.000000s"); }

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(3), [&] { order.push_back(3); });
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(SimulatorTest, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Seconds(1), [&, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  Time inner_fired_at = -1;
  sim.Schedule(Seconds(1), [&] {
    sim.Schedule(Seconds(2), [&] { inner_fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fired_at, Seconds(3));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  Time fired_at = -1;
  sim.Schedule(Seconds(1), [&] {
    sim.Schedule(-Seconds(5), [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Seconds(1));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Seconds(1), [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.Cancel(kInvalidEventId);
  sim.Cancel(9999);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, PendingEventsNeverUnderflows) {
  Simulator sim;
  // Cancelling an already-fired event used to leave a stale tombstone that
  // made `queue_.size() - cancelled_.size()` wrap around to ~SIZE_MAX.
  EventId id = sim.Schedule(Seconds(1), [] {});
  sim.Run();
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  // And stale tombstones must not hide genuinely pending events.
  sim.Schedule(Seconds(1), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, PendingEventsCountsLiveMinusCancelled) {
  Simulator sim;
  EventId a = sim.Schedule(Seconds(1), [] {});
  sim.Schedule(Seconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(5), [&] { ++fired; });
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Seconds(3));
  sim.RunFor(Seconds(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Seconds(13));
}

TEST(SimulatorTest, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(Seconds(3), [&] { fired = true; });
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancellingFiredIdsInNeverEmptyQueueStaysExact) {
  // Regression: cancelled ids of already-fired events used to accumulate in
  // a tombstone set for as long as the queue stayed non-empty, leaking
  // memory in long-running sims and skewing pending_events(). The indexed
  // heap resolves fired ids exactly, so pending_events() stays exact no
  // matter how many stale cancels arrive.
  Simulator sim;
  sim.Schedule(Seconds(1'000'000), [] {});  // keeps the queue non-empty
  for (int i = 0; i < 10'000; ++i) {
    EventId id = sim.Schedule(Micros(1), [] {});
    EXPECT_EQ(sim.pending_events(), 2u);
    sim.Step();  // fires the short event
    sim.Cancel(id);  // stale cancel of a fired id: must be a no-op
    EXPECT_EQ(sim.pending_events(), 1u);
  }
}

TEST(SimulatorTest, StaleIdNeverCancelsARecycledSlot) {
  Simulator sim;
  bool first = false, second = false;
  EventId a = sim.Schedule(Seconds(1), [&] { first = true; });
  sim.RunFor(Seconds(2));
  // `a` fired; its slot is recycled by the next schedule. The stale id must
  // not touch the new occupant.
  EventId b = sim.Schedule(Seconds(1), [&] { second = true; });
  EXPECT_NE(a, b);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
}

TEST(SimulatorTest, CancelInterleavedKeepsOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(sim.Schedule(Seconds(i + 1), [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 1; i < 16; i += 2) sim.Cancel(ids[i]);  // cancel the odds
  EXPECT_EQ(sim.pending_events(), 8u);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14}));
}

TEST(SimulatorTest, RescheduleMovesPendingEventLater) {
  Simulator sim;
  Time fired_at = -1;
  EventId id = sim.Schedule(Seconds(1), [&] { fired_at = sim.now(); });
  EXPECT_TRUE(sim.Reschedule(id, Seconds(5)));
  sim.Run();
  EXPECT_EQ(fired_at, Seconds(5));
}

TEST(SimulatorTest, RescheduleMovesPendingEventEarlier) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(2), [&] { order.push_back(1); });
  EventId id = sim.Schedule(Seconds(9), [&] { order.push_back(2); });
  EXPECT_TRUE(sim.Reschedule(id, Seconds(1)));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimulatorTest, RescheduleFiredOrCancelledIdFails) {
  Simulator sim;
  int fired = 0;
  EventId a = sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Run();
  EXPECT_FALSE(sim.Reschedule(a, Seconds(1)));
  EventId b = sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Cancel(b);
  EXPECT_FALSE(sim.Reschedule(b, Seconds(1)));
  EXPECT_FALSE(sim.Reschedule(kInvalidEventId, Seconds(1)));
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RescheduledEventLosesTieBreakToExisting) {
  // Re-keying re-enters the tie-break order as if freshly scheduled, the
  // same ordering cancel + reschedule produced before.
  Simulator sim;
  std::vector<int> order;
  EventId moved = sim.Schedule(Seconds(1), [&] { order.push_back(0); });
  sim.Schedule(Seconds(2), [&] { order.push_back(1); });
  sim.Reschedule(moved, Seconds(2));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(SimulatorTest, LargeCaptureCallbacksFire) {
  // Closures beyond EventFn's inline buffer take the heap fallback; they
  // must still move and fire correctly.
  Simulator sim;
  std::array<std::uint64_t, 32> big{};
  big.fill(7);
  std::uint64_t sum = 0;
  sim.Schedule(Seconds(1), [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  sim.Run();
  EXPECT_EQ(sum, 7u * 32);
}

TEST(SimulatorTest, MaxEventsGuard) {
  Simulator sim;
  int count = 0;
  std::function<void()> loop = [&] {
    ++count;
    sim.Schedule(Seconds(1), loop);
  };
  sim.Schedule(Seconds(1), loop);
  sim.Run(100);
  EXPECT_EQ(count, 100);
}

TEST(TimerTest, OneShotFiresOnce) {
  Simulator sim;
  Timer timer(&sim);
  int fired = 0;
  timer.StartOneShot(Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(timer.active());
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.active());
}

TEST(TimerTest, RestartReplacesPending) {
  Simulator sim;
  Timer timer(&sim);
  std::vector<Time> fires;
  timer.StartOneShot(Seconds(2), [&] { fires.push_back(sim.now()); });
  sim.RunUntil(Seconds(1));
  timer.StartOneShot(Seconds(2), [&] { fires.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], Seconds(3));
}

TEST(TimerTest, PeriodicFiresRepeatedly) {
  Simulator sim;
  Timer timer(&sim);
  int fired = 0;
  timer.StartPeriodic(Seconds(1), [&] {
    if (++fired == 5) timer.Stop();
  });
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), Seconds(5));
}

TEST(TimerTest, StopPreventsFiring) {
  Simulator sim;
  Timer timer(&sim);
  bool fired = false;
  timer.StartOneShot(Seconds(1), [&] { fired = true; });
  timer.Stop();
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RearmCurrentReusesCallbackStorage) {
  // A self-rearming event keeps firing out of the same slot: the callback
  // object (heap-backed here — the capture exceeds EventFn's inline
  // buffer) moves back into place after each firing instead of being
  // reconstructed.
  Simulator sim;
  std::array<std::uint64_t, 32> big{};
  big.fill(1);
  int fired = 0;
  sim.Schedule(Seconds(1), [&sim, &fired, big] {
    fired += static_cast<int>(big[0]);
    if (fired < 4) sim.RearmCurrent(Seconds(1));
  });
  sim.Run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.rearm_hits(), 3u);
  EXPECT_EQ(sim.events_processed(), 4u);
  EXPECT_EQ(sim.now(), Seconds(4));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelDuringCallbackSuppressesRearm) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    const EventId id = sim.RearmCurrent(Seconds(1));
    sim.Cancel(id);  // cancelled before the callback returns: no re-queue
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.rearm_hits(), 1u);  // the re-arm itself did succeed
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimerTest, PeriodicRearmsWithoutChurn) {
  // The churn regression check: every periodic firing must go through
  // RearmCurrent (zero per-period closure construction), including the
  // final one whose callback calls Stop() — Stop cancels the already
  // re-armed event.
  Simulator sim;
  Timer timer(&sim);
  int fired = 0;
  timer.StartPeriodic(Seconds(1), [&] {
    if (++fired == 5) timer.Stop();
  });
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.rearm_hits(), 5u);
  EXPECT_FALSE(timer.active());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimerTest, RestartInsideCallbackOverridesRearm) {
  // A callback that restarts its own timer (heartbeat backoff pattern)
  // must win over the implicit periodic re-arm.
  Simulator sim;
  Timer timer(&sim);
  std::vector<Time> fires;
  timer.StartPeriodic(Seconds(1), [&] {
    fires.push_back(sim.now());
    if (fires.size() == 1) {
      timer.StartOneShot(Seconds(10), [&] { fires.push_back(sim.now()); });
    }
  });
  sim.Run();
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[0], Seconds(1));
  EXPECT_EQ(fires[1], Seconds(11));
}

TEST(TimerTest, DestructorCancels) {
  Simulator sim;
  bool fired = false;
  {
    Timer timer(&sim);
    timer.StartOneShot(Seconds(1), [&] { fired = true; });
  }
  sim.Run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace ustore::sim
