#include <gtest/gtest.h>

#include <vector>

#include "hw/disk.h"
#include "sim/simulator.h"

namespace ustore::hw {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() : disk_(&sim_, "d0", DiskModel(DiskParams{}, SataInterface())) {}

  Status SubmitAndRun(const IoRequest& req) {
    Status out = InternalError("never completed");
    disk_.SubmitIo(req, [&](Status s) { out = s; });
    sim_.Run();
    return out;
  }

  sim::Simulator sim_;
  Disk disk_;
};

TEST_F(DiskTest, StartsIdle) {
  EXPECT_EQ(disk_.state(), DiskState::kIdle);
  EXPECT_EQ(disk_.capacity(), TB(3));
}

TEST_F(DiskTest, CompletesReadAtModelledServiceTime) {
  IoRequest req{KiB(4), IoDirection::kRead, AccessPattern::kSequential};
  EXPECT_TRUE(SubmitAndRun(req).ok());
  const sim::Duration expected =
      disk_.model().ServiceTime(req, IoDirection::kRead);
  EXPECT_EQ(sim_.now(), expected);
  EXPECT_EQ(disk_.ios_completed(), 1u);
  EXPECT_EQ(disk_.bytes_read(), KiB(4));
}

TEST_F(DiskTest, QueueServicesFifo) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    disk_.SubmitIo({KiB(4), IoDirection::kRead, AccessPattern::kSequential},
                   [&, i](Status s) {
                     EXPECT_TRUE(s.ok());
                     order.push_back(i);
                   });
  }
  EXPECT_EQ(disk_.queue_depth(), 5u);
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(disk_.ios_completed(), 5u);
}

TEST_F(DiskTest, ActiveWhileServing) {
  disk_.SubmitIo({MiB(4), IoDirection::kRead, AccessPattern::kSequential},
                 [](Status) {});
  sim_.RunFor(sim::Millis(1));
  EXPECT_EQ(disk_.state(), DiskState::kActive);
  sim_.Run();
  EXPECT_EQ(disk_.state(), DiskState::kIdle);
}

TEST_F(DiskTest, SpinDownAndImplicitSpinUp) {
  disk_.SpinDown();
  EXPECT_EQ(disk_.state(), DiskState::kSpunDown);

  Status status = InternalError("pending");
  disk_.SubmitIo({KiB(4), IoDirection::kRead, AccessPattern::kSequential},
                 [&](Status s) { status = s; });
  EXPECT_EQ(disk_.state(), DiskState::kSpinningUp);
  sim_.Run();
  EXPECT_TRUE(status.ok());
  EXPECT_GE(sim_.now(), DiskParams{}.spin_up_time);
  EXPECT_EQ(disk_.spin_cycles(), 1);
}

TEST_F(DiskTest, PowerOffFailsIo) {
  disk_.PowerOff();
  EXPECT_EQ(disk_.state(), DiskState::kPoweredOff);
  Status s = SubmitAndRun({KiB(4), IoDirection::kRead,
                           AccessPattern::kSequential});
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST_F(DiskTest, PowerOffMidIoFailsInFlight) {
  Status status;
  disk_.SubmitIo({MiB(4), IoDirection::kRead, AccessPattern::kSequential},
                 [&](Status s) { status = s; });
  sim_.Schedule(sim::Millis(1), [&] { disk_.PowerOff(); });
  sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(DiskTest, PowerOnLeavesSpunDown) {
  disk_.PowerOff();
  disk_.PowerOn();
  EXPECT_EQ(disk_.state(), DiskState::kSpunDown);  // rolling spin-up support
}

TEST_F(DiskTest, FailAndRepair) {
  disk_.Fail();
  EXPECT_TRUE(disk_.failed());
  Status s = SubmitAndRun({KiB(4), IoDirection::kRead,
                           AccessPattern::kSequential});
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);

  disk_.Repair();
  EXPECT_FALSE(disk_.failed());
  disk_.SpinUp();
  sim_.Run();
  s = SubmitAndRun({KiB(4), IoDirection::kRead, AccessPattern::kSequential});
  EXPECT_TRUE(s.ok());
}

TEST_F(DiskTest, IdleTimeoutSpinsDown) {
  disk_.SetIdleSpinDown(sim::Seconds(10));
  EXPECT_TRUE(SubmitAndRun({KiB(4), IoDirection::kRead,
                            AccessPattern::kSequential}).ok());
  sim_.RunFor(sim::Seconds(11));
  EXPECT_EQ(disk_.state(), DiskState::kSpunDown);
}

TEST_F(DiskTest, FrequentSpinCyclesBackOffTimeout) {
  disk_.SetIdleSpinDown(sim::Seconds(10));
  const sim::Duration initial = disk_.effective_idle_timeout();
  // Ping the disk immediately after each spin-down, several times: cycles
  // arrive faster than 4x the idle timeout, so the host backs off.
  for (int i = 0; i < 3; ++i) {
    for (int step = 0; step < 10000 && disk_.state() != DiskState::kSpunDown;
         ++step) {
      sim_.RunFor(sim::Seconds(1));
    }
    ASSERT_EQ(disk_.state(), DiskState::kSpunDown);
    Status status;
    disk_.SubmitIo({KiB(4), IoDirection::kRead, AccessPattern::kSequential},
                   [&](Status s) { status = s; });
    sim_.Run();
    EXPECT_TRUE(status.ok());
  }
  EXPECT_GT(disk_.effective_idle_timeout(), initial);
}

TEST_F(DiskTest, PowerByState) {
  const DiskParams p;
  EXPECT_DOUBLE_EQ(disk_.current_power(), p.power_idle);
  disk_.SpinDown();
  EXPECT_DOUBLE_EQ(disk_.current_power(), p.power_spun_down);
  disk_.PowerOff();
  EXPECT_DOUBLE_EQ(disk_.current_power(), 0.0);
}

TEST_F(DiskTest, UsbBridgePowerAddsToDiskPower) {
  Disk usb_disk(&sim_, "d1", DiskModel(DiskParams{}, UsbBridgeInterface()));
  const DiskParams p;
  const InterfaceParams i = UsbBridgeInterface();
  // Table III USB row: idle 5.76 W.
  EXPECT_NEAR(usb_disk.current_power(), p.power_idle + i.power_idle, 1e-9);
  EXPECT_NEAR(usb_disk.current_power(), 5.76, 0.01);
  usb_disk.SpinDown();
  EXPECT_NEAR(usb_disk.current_power(), 1.56, 0.01);
}

TEST_F(DiskTest, FingerprintRoundTrip) {
  disk_.WriteFingerprint(0, 0xABCD);
  disk_.WriteFingerprint(KiB(4), 0x1234);
  EXPECT_EQ(disk_.ReadFingerprint(0), 0xABCDu);
  EXPECT_EQ(disk_.ReadFingerprint(100), 0xABCDu);  // same 4 KiB block
  EXPECT_EQ(disk_.ReadFingerprint(KiB(4)), 0x1234u);
  EXPECT_EQ(disk_.ReadFingerprint(MiB(1)), 0u);  // never written
}

TEST_F(DiskTest, MixedStreamSlowerThanPureStream) {
  // Direction switches should show up in actual queue service, not just the
  // analytic model: alternate read/write vs all-read.
  sim::Time pure_done, mixed_done;
  {
    sim::Simulator sim;
    Disk d(&sim, "p", DiskModel(DiskParams{}, SataInterface()));
    for (int i = 0; i < 20; ++i) {
      d.SubmitIo({KiB(4), IoDirection::kRead, AccessPattern::kSequential},
                 [](Status) {});
    }
    sim.Run();
    pure_done = sim.now();
  }
  {
    sim::Simulator sim;
    Disk d(&sim, "m", DiskModel(DiskParams{}, SataInterface()));
    for (int i = 0; i < 20; ++i) {
      d.SubmitIo({KiB(4),
                  i % 2 == 0 ? IoDirection::kRead : IoDirection::kWrite,
                  AccessPattern::kSequential},
                 [](Status) {});
    }
    sim.Run();
    mixed_done = sim.now();
  }
  EXPECT_GT(mixed_done, pure_done);
}

}  // namespace
}  // namespace ustore::hw
