// Tests for the paper's optional/extension features: rolling spin-up
// (§III-B) and fabric-assisted rebuild (§IV-E future work), plus ClientLib
// edge cases around remounting.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/power_sequencer.h"
#include "services/rebuild.h"

namespace ustore::core {
namespace {

// --- PowerSequencer -----------------------------------------------------------

class PowerSequencerTest : public ::testing::Test {
 protected:
  PowerSequencerTest() {
    fabric::FabricManager::Options options;
    options.disks_start_powered = false;
    manager_ = std::make_unique<fabric::FabricManager>(
        &sim_, fabric::BuildPrototypeFabric(), options, Rng(3));
    sim_.RunFor(sim::Seconds(1));
  }

  sim::Simulator sim_;
  std::unique_ptr<fabric::FabricManager> manager_;
};

TEST_F(PowerSequencerTest, ColdUnitStartsPoweredOff) {
  for (fabric::NodeIndex node : manager_->fabric().disks) {
    EXPECT_EQ(manager_->disk(node)->state(), hw::DiskState::kPoweredOff);
  }
  EXPECT_NEAR(manager_->DisksPower(), 0.0, 0.01);
}

TEST_F(PowerSequencerTest, RollingBringsEveryDiskUp) {
  PowerSequencer sequencer(&sim_, manager_.get(), 0, {.max_concurrent_spinups = 4});
  Status status = InternalError("pending");
  sequencer.PowerOnAll([&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(120));
  ASSERT_TRUE(status.ok()) << status;
  for (fabric::NodeIndex node : manager_->fabric().disks) {
    EXPECT_EQ(manager_->disk(node)->state(), hw::DiskState::kIdle);
  }
}

TEST_F(PowerSequencerTest, RollingBoundsPeakPower) {
  PowerSequencer rolling(&sim_, manager_.get(), 0,
                         {.max_concurrent_spinups = 2});
  Status status = InternalError("pending");
  rolling.PowerOnAll([&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(200));
  ASSERT_TRUE(status.ok());
  // Peak must stay well under stacking all 16 surges (~25 W each incl.
  // bridge); 2 concurrent surges + idle tail.
  EXPECT_LT(rolling.peak_power(), 200.0);
  EXPECT_GT(rolling.peak_power(), 2 * 20.0);
}

TEST_F(PowerSequencerTest, AllAtOnceStacksSurges) {
  PowerSequencer at_once(&sim_, manager_.get(), 0, {});
  Status status = InternalError("pending");
  at_once.PowerOnAllAtOnce([&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(60));
  ASSERT_TRUE(status.ok());
  EXPECT_GT(at_once.peak_power(), 16 * 20.0);
}

TEST_F(PowerSequencerTest, RollingIsSlowerThanAllAtOnce) {
  sim::Time rolling_done = 0, at_once_done = 0;
  {
    sim::Simulator sim;
    fabric::FabricManager::Options options;
    options.disks_start_powered = false;
    fabric::FabricManager manager(&sim, fabric::BuildPrototypeFabric(),
                                  options, Rng(3));
    sim.RunFor(sim::Seconds(1));
    PowerSequencer sequencer(&sim, &manager, 0,
                             {.max_concurrent_spinups = 2});
    bool done = false;
    sequencer.PowerOnAll([&](Status) { done = true; });
    while (!done) sim.RunFor(sim::Seconds(1));
    rolling_done = sim.now();
  }
  {
    sim::Simulator sim;
    fabric::FabricManager::Options options;
    options.disks_start_powered = false;
    fabric::FabricManager manager(&sim, fabric::BuildPrototypeFabric(),
                                  options, Rng(3));
    sim.RunFor(sim::Seconds(1));
    PowerSequencer sequencer(&sim, &manager, 0, {});
    bool done = false;
    sequencer.PowerOnAllAtOnce([&](Status) { done = true; });
    while (!done) sim.RunFor(sim::Seconds(1));
    at_once_done = sim.now();
  }
  EXPECT_GT(rolling_done, at_once_done);
}

// --- RebuildAgent ------------------------------------------------------------------

class RebuildTest : public ::testing::Test {
 protected:
  RebuildTest() {
    cluster_.Start();
    client_ = cluster_.MakeClient("rebuild-client");
    source_ = Allocate("svc-src", 1);
    target_ = Allocate("svc-dst", 2);
  }

  ClientLib::Volume* Allocate(const std::string& service, int locality) {
    auto client = cluster_.MakeClient(service + "-owner", locality);
    ClientLib::Volume* volume = nullptr;
    client->AllocateAndMount(service, GiB(4),
                             [&](Result<ClientLib::Volume*> r) {
                               if (r.ok()) volume = *r;
                             });
    cluster_.RunFor(sim::Seconds(10));
    owners_.push_back(std::move(client));
    return volume;
  }

  core::Cluster cluster_;
  std::unique_ptr<ClientLib> client_;
  std::vector<std::unique_ptr<ClientLib>> owners_;
  ClientLib::Volume* source_ = nullptr;
  ClientLib::Volume* target_ = nullptr;
};

TEST_F(RebuildTest, CopiesAllBlocksWithTagsIntact) {
  ASSERT_NE(source_, nullptr);
  ASSERT_NE(target_, nullptr);
  for (int i = 0; i < 8; ++i) {
    source_->Write(static_cast<Bytes>(i) * MiB(4), MiB(4), false, 600 + i,
                   [](Status) {});
  }
  cluster_.RunFor(sim::Seconds(10));

  services::RebuildAgent agent(&cluster_.sim(), source_, target_);
  services::RebuildReport report;
  report.status = InternalError("pending");
  agent.Rebuild(8, [&](services::RebuildReport r) { report = r; });
  cluster_.RunFor(sim::Seconds(120));
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.blocks_copied, 8);
  EXPECT_GT(report.throughput_mbps, 10.0);

  // Spot-check the copied fingerprints.
  for (int i = 0; i < 8; ++i) {
    Result<std::uint64_t> tag = InternalError("pending");
    target_->Read(static_cast<Bytes>(i) * MiB(4), MiB(4), false,
                  [&](Result<std::uint64_t> r) { tag = r; });
    cluster_.RunFor(sim::Seconds(3));
    ASSERT_TRUE(tag.ok());
    EXPECT_EQ(*tag, 600u + i);
  }
}

TEST_F(RebuildTest, ReportsSourceFailureMidCopy) {
  ASSERT_NE(source_, nullptr);
  for (int i = 0; i < 8; ++i) {
    source_->Write(static_cast<Bytes>(i) * MiB(4), MiB(4), false, 1,
                   [](Status) {});
  }
  cluster_.RunFor(sim::Seconds(10));

  services::RebuildAgent agent(&cluster_.sim(), source_, target_);
  services::RebuildReport report;
  report.status = InternalError("pending");
  agent.Rebuild(8, [&](services::RebuildReport r) { report = r; });
  // Fail the source disk hardware mid-copy.
  cluster_.RunFor(sim::MillisD(150));
  ASSERT_TRUE(
      cluster_.fabric().FailUnit(source_->id().disk).ok());
  cluster_.RunFor(sim::Seconds(120));
  EXPECT_FALSE(report.status.ok());
  EXPECT_LT(report.blocks_copied, 8);
}

// --- ClientLib edges ------------------------------------------------------------------

TEST_F(RebuildTest, MountUnknownSpaceFails) {
  AllocatedSpace ghost;
  ghost.id = SpaceId{0, "disk-0", 999};
  ghost.host = "host-0";
  ghost.length = GiB(1);
  Result<ClientLib::Volume*> result = InternalError("pending");
  client_->Mount(ghost, [&](Result<ClientLib::Volume*> r) { result = r; });
  cluster_.RunFor(sim::Seconds(5));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client_->volume(ghost.id), nullptr);
}

TEST_F(RebuildTest, UnmountForgetsVolume) {
  ASSERT_NE(source_, nullptr);
  // source_ was mounted by its owner, not client_; mount here too.
  Result<ClientLib::Volume*> mine = InternalError("pending");
  client_->Mount(source_->space(),
                 [&](Result<ClientLib::Volume*> r) { mine = r; });
  cluster_.RunFor(sim::Seconds(5));
  ASSERT_TRUE(mine.ok());
  const SpaceId id = (*mine)->id();
  EXPECT_NE(client_->volume(id), nullptr);
  client_->Unmount(id);
  EXPECT_EQ(client_->volume(id), nullptr);
}

}  // namespace
}  // namespace ustore::core
