// End-to-end integration tests on the full simulated deployment (Fig. 3):
// allocation, mount, I/O, host failover with automatic remount, master
// takeover, and power management.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/cluster.h"

namespace ustore::core {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    cluster_.Start();
    client_ = cluster_.MakeClient("client-0");
  }

  Result<ClientLib::Volume*> AllocateSync(const std::string& service,
                                          Bytes size,
                                          ClientLib* client = nullptr) {
    if (client == nullptr) client = client_.get();
    Result<ClientLib::Volume*> out = InternalError("pending");
    client->AllocateAndMount(service, size,
                             [&](Result<ClientLib::Volume*> r) { out = r; });
    cluster_.RunFor(sim::Seconds(10));
    return out;
  }

  Status WriteSync(ClientLib::Volume* volume, Bytes offset,
                   std::uint64_t tag) {
    Status out = InternalError("pending");
    volume->Write(offset, KiB(4), false, tag, [&](Status s) { out = s; });
    cluster_.RunFor(sim::Seconds(5));
    return out;
  }

  Result<std::uint64_t> ReadSync(ClientLib::Volume* volume, Bytes offset) {
    Result<std::uint64_t> out = InternalError("pending");
    volume->Read(offset, KiB(4), false,
                 [&](Result<std::uint64_t> r) { out = r; });
    cluster_.RunFor(sim::Seconds(5));
    return out;
  }

  Cluster cluster_;
  std::unique_ptr<ClientLib> client_;
};

TEST_F(ClusterTest, StartupElectsOneActiveMaster) {
  int active = 0;
  for (int i = 0; i < 2; ++i) {
    if (cluster_.master(i)->is_active()) ++active;
  }
  EXPECT_EQ(active, 1);
}

TEST_F(ClusterTest, MasterSeesAllHostsAlive) {
  Master* master = cluster_.active_master();
  ASSERT_NE(master, nullptr);
  for (int h = 0; h < 4; ++h) {
    EXPECT_TRUE(master->HostAlive(h)) << "host " << h;
  }
}

TEST_F(ClusterTest, MasterLearnsDiskMappingFromHeartbeats) {
  Master* master = cluster_.active_master();
  EXPECT_EQ(master->CurrentHostOfDisk("disk-0"), 0);
  EXPECT_EQ(master->CurrentHostOfDisk("disk-7"), 1);
  EXPECT_EQ(master->CurrentHostOfDisk("disk-15"), 3);
}

TEST_F(ClusterTest, AllocateMountWriteRead) {
  auto volume = AllocateSync("backup-svc", GiB(100));
  ASSERT_TRUE(volume.ok()) << volume.status();
  EXPECT_TRUE((*volume)->mounted());

  ASSERT_TRUE(WriteSync(*volume, 0, 0xCAFE).ok());
  auto tag = ReadSync(*volume, 0);
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, 0xCAFEu);
}

TEST_F(ClusterTest, AllocationsPreferSameServiceDisk) {
  auto first = AllocateSync("svc-a", GiB(10));
  ASSERT_TRUE(first.ok());
  auto second = AllocateSync("svc-a", GiB(10));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*first)->id().disk, (*second)->id().disk);

  // A different service gets a different (fresh) disk.
  auto other = AllocateSync("svc-b", GiB(10));
  ASSERT_TRUE(other.ok());
  EXPECT_NE((*other)->id().disk, (*first)->id().disk);
}

TEST_F(ClusterTest, AllocationsHonourLocalityHint) {
  auto local_client = cluster_.MakeClient("client-near-2", /*locality=*/2);
  auto volume = AllocateSync("svc-local", GiB(10), local_client.get());
  ASSERT_TRUE(volume.ok());
  Master* master = cluster_.active_master();
  EXPECT_EQ(master->CurrentHostOfDisk((*volume)->id().disk), 2);
}

TEST_F(ClusterTest, AllocationRejectsOversizedRequests) {
  Result<ClientLib::Volume*> result = InternalError("pending");
  client_->AllocateAndMount("svc", TB(100),
                            [&](Result<ClientLib::Volume*> r) { result = r; });
  cluster_.RunFor(sim::Seconds(5));
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ClusterTest, LookupReturnsCurrentHost) {
  auto volume = AllocateSync("svc", GiB(10));
  ASSERT_TRUE(volume.ok());
  Result<LookupResponse> lookup = InternalError("pending");
  client_->Lookup((*volume)->id(),
                  [&](Result<LookupResponse> r) { lookup = r; });
  cluster_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(lookup.ok());
  EXPECT_TRUE(lookup->available);
  EXPECT_EQ(lookup->host, (*volume)->current_host());
}

TEST_F(ClusterTest, ReleaseFreesSpaceAndChecksOwnership) {
  auto volume = AllocateSync("svc-a", GiB(10));
  ASSERT_TRUE(volume.ok());
  const SpaceId id = (*volume)->id();

  Status status = InternalError("pending");
  client_->Release(id, "svc-b", [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(3));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // Remount before releasing properly (Release unmounted it locally).
  client_->Release(id, "svc-a", [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(3));
  EXPECT_TRUE(status.ok());

  Result<LookupResponse> lookup = InternalError("pending");
  client_->Lookup(id, [&](Result<LookupResponse> r) { lookup = r; });
  cluster_.RunFor(sim::Seconds(2));
  EXPECT_EQ(lookup.status().code(), StatusCode::kNotFound);
}

TEST_F(ClusterTest, HostFailureTriggersAutomaticFailover) {
  // The flagship behaviour: allocate on host 0, crash host 0, observe the
  // volume come back on another host with data intact.
  auto local_client = cluster_.MakeClient("client-near-0", /*locality=*/0);
  auto volume = AllocateSync("svc", GiB(10), local_client.get());
  ASSERT_TRUE(volume.ok());
  ASSERT_EQ(cluster_.active_master()->CurrentHostOfDisk((*volume)->id().disk),
            0);
  Status write = InternalError("pending");
  (*volume)->Write(0, KiB(4), false, 0xBEEF, [&](Status s) { write = s; });
  cluster_.RunFor(sim::Seconds(3));
  ASSERT_TRUE(write.ok());

  cluster_.CrashHost(0);
  cluster_.RunFor(sim::Seconds(30));

  Master* master = cluster_.active_master();
  ASSERT_NE(master, nullptr);
  EXPECT_FALSE(master->HostAlive(0));
  EXPECT_GE(master->failovers_completed(), 1);
  const int new_host = master->CurrentHostOfDisk((*volume)->id().disk);
  EXPECT_NE(new_host, 0);
  EXPECT_GE(new_host, 0);

  // The volume remounted automatically and serves the old data.
  EXPECT_TRUE((*volume)->mounted());
  EXPECT_GE((*volume)->remount_count(), 1);
  Result<std::uint64_t> tag = InternalError("pending");
  (*volume)->Read(0, KiB(4), false,
                  [&](Result<std::uint64_t> r) { tag = r; });
  cluster_.RunFor(sim::Seconds(5));
  ASSERT_TRUE(tag.ok()) << tag.status();
  EXPECT_EQ(*tag, 0xBEEFu);
}

TEST_F(ClusterTest, FailoverOfControllingHostUsesBackupController) {
  // Host 0 runs the primary controller; crashing it exercises the §III-B
  // takeover path (secondary microcontroller + backup controller).
  auto client = cluster_.MakeClient("client", /*locality=*/0);
  auto volume = AllocateSync("svc", GiB(10), client.get());
  ASSERT_TRUE(volume.ok());

  cluster_.CrashHost(0);
  cluster_.RunFor(sim::Seconds(30));

  EXPECT_TRUE(cluster_.fabric().mcu(1)->powered());
  const int new_host =
      cluster_.active_master()->CurrentHostOfDisk((*volume)->id().disk);
  EXPECT_GT(new_host, 0);
  EXPECT_TRUE((*volume)->mounted());
}

TEST_F(ClusterTest, IoDuringFailoverFailsThenRecovers) {
  auto client = cluster_.MakeClient("client", /*locality=*/3);
  auto volume = AllocateSync("svc", GiB(10), client.get());
  ASSERT_TRUE(volume.ok());

  cluster_.CrashHost(3);
  cluster_.RunFor(sim::Seconds(1));
  // The first I/O after the crash fails (timeout), kicking off remount.
  Status during = InternalError("pending");
  (*volume)->Write(0, KiB(4), false, 1, [&](Status s) { during = s; });
  cluster_.RunFor(sim::Seconds(10));
  EXPECT_FALSE(during.ok());

  cluster_.RunFor(sim::Seconds(25));
  EXPECT_TRUE((*volume)->mounted());
  EXPECT_TRUE(WriteSync(*volume, 0, 2).ok());
}

TEST_F(ClusterTest, StandbyMasterTakesOverWithAllocationsIntact) {
  auto volume = AllocateSync("svc", GiB(10));
  ASSERT_TRUE(volume.ok());
  Master* active = cluster_.active_master();
  Master* standby =
      cluster_.master(0) == active ? cluster_.master(1) : cluster_.master(0);
  ASSERT_FALSE(standby->is_active());

  active->Crash();
  cluster_.RunFor(sim::Seconds(20));  // session expiry + election + load

  EXPECT_TRUE(standby->is_active());
  EXPECT_EQ(standby->allocation_count(), 1u);
  // The new master serves lookups for the existing allocation.
  Result<LookupResponse> lookup = InternalError("pending");
  client_->Lookup((*volume)->id(),
                  [&](Result<LookupResponse> r) { lookup = r; });
  cluster_.RunFor(sim::Seconds(5));
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(lookup->length, GiB(10));
}

TEST_F(ClusterTest, ServicePowerManagement) {
  auto volume = AllocateSync("archive-svc", GiB(10));
  ASSERT_TRUE(volume.ok());
  const std::string disk = (*volume)->id().disk;

  // Another service may not touch the disk.
  Status status = InternalError("pending");
  client_->SetDiskPower("other-svc", disk, DiskPowerAction::kSpinDown,
                        [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(3));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // The owner spins it down...
  client_->SetDiskPower("archive-svc", disk, DiskPowerAction::kSpinDown,
                        [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(3));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(cluster_.fabric().disk(disk)->state(),
            hw::DiskState::kSpunDown);

  // ...reads spin it back up implicitly (with spin-up latency)...
  auto tag = ReadSync(*volume, 0);
  cluster_.RunFor(sim::Seconds(10));
  EXPECT_EQ(cluster_.fabric().disk(disk)->state(), hw::DiskState::kIdle);

  // ...and can cut its power entirely through the fabric relay.
  client_->SetDiskPower("archive-svc", disk, DiskPowerAction::kPowerOff,
                        [&](Status s) { status = s; });
  cluster_.RunFor(sim::Seconds(3));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(cluster_.fabric().disk(disk)->state(),
            hw::DiskState::kPoweredOff);
}

TEST_F(ClusterTest, RestartedHostRejoins) {
  cluster_.CrashHost(2);
  cluster_.RunFor(sim::Seconds(30));
  EXPECT_FALSE(cluster_.active_master()->HostAlive(2));

  cluster_.RestartHost(2);
  cluster_.RunFor(sim::Seconds(10));
  EXPECT_TRUE(cluster_.active_master()->HostAlive(2));
}

}  // namespace
}  // namespace ustore::core
