#include <gtest/gtest.h>

#include <memory>

#include "core/cluster.h"
#include "services/workloads.h"

namespace ustore::services {
namespace {

TEST(LatencySummaryTest, EmptyIsZero) {
  LatencyStats stats = SummarizeLatencies({});
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 0);
}

TEST(LatencySummaryTest, PercentilesAndSlowHits) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i * 10.0);  // 10..1000
  values.push_back(8000.0);  // one spin-up hit
  LatencyStats stats = SummarizeLatencies(values);
  EXPECT_EQ(stats.count, 101);
  EXPECT_NEAR(stats.p50_ms, 510.0, 15.0);
  EXPECT_NEAR(stats.p99_ms, 1000.0, 15.0);
  EXPECT_DOUBLE_EQ(stats.max_ms, 8000.0);
  EXPECT_EQ(stats.slow_hits, 1);
}

class ColdStudyTest : public ::testing::Test {
 protected:
  ColdStudyTest() {
    cluster_.Start();
    client_ = cluster_.MakeClient("cold-test-client");
    client_->AllocateAndMount("cold-test", GiB(10),
                              [&](Result<core::ClientLib::Volume*> r) {
                                if (r.ok()) volume_ = *r;
                              });
    cluster_.RunFor(sim::Seconds(10));
  }

  ColdStudyReport Run(sim::Duration spin_down, double interarrival_s,
                      sim::Duration window) {
    hw::Disk* disk = cluster_.fabric().disk(volume_->id().disk);
    disk->SetIdleSpinDown(spin_down);
    ColdWorkloadOptions options;
    options.mean_interarrival_seconds = interarrival_s;
    options.object_count = 20;
    ColdStorageStudy study(&cluster_.sim(), volume_, disk, options, Rng(8));
    ColdStudyReport report;
    report.status = InternalError("never finished");
    bool finished = false;
    study.Run(window, [&](ColdStudyReport r) {
      report = r;
      finished = true;
    });
    cluster_.RunFor(window + sim::Seconds(120));
    EXPECT_TRUE(finished);
    return report;
  }

  core::Cluster cluster_;
  std::unique_ptr<core::ClientLib> client_;
  core::ClientLib::Volume* volume_ = nullptr;
};

TEST_F(ColdStudyTest, ServesReadsAndReportsLatency) {
  ASSERT_NE(volume_, nullptr);
  auto report = Run(/*spin_down=*/0, /*interarrival=*/30,
                    sim::Seconds(1200));
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_GT(report.latency.count, 10);
  EXPECT_GT(report.latency.mean_ms, 1.0);
  EXPECT_EQ(report.latency.slow_hits, 0);  // disk never spins down
  EXPECT_EQ(report.disk_spin_cycles, 0);
  EXPECT_NEAR(report.average_disk_power, 5.76, 0.5);  // idle USB disk
}

TEST_F(ColdStudyTest, AggressiveSpinDownTradesLatencyForPower) {
  ASSERT_NE(volume_, nullptr);
  auto report = Run(/*spin_down=*/sim::Seconds(30), /*interarrival=*/300,
                    sim::Seconds(4 * 3600));
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_GT(report.latency.slow_hits, 0);   // spin-up hits the tail
  EXPECT_GT(report.disk_spin_cycles, 0);
  EXPECT_LT(report.average_disk_power, 4.0);  // but power drops a lot
  EXPECT_GT(report.latency.max_ms, 7000.0);
}

TEST_F(ColdStudyTest, DeterministicForSameSeed) {
  ASSERT_NE(volume_, nullptr);
  // Two full clusters with the same seeds produce identical studies.
  auto run_once = [] {
    core::ClusterOptions options;
    options.seed = 123;
    core::Cluster cluster(options);
    cluster.Start();
    auto client = cluster.MakeClient("c");
    core::ClientLib::Volume* volume = nullptr;
    client->AllocateAndMount("svc", GiB(10),
                             [&](Result<core::ClientLib::Volume*> r) {
                               if (r.ok()) volume = *r;
                             });
    cluster.RunFor(sim::Seconds(10));
    hw::Disk* disk = cluster.fabric().disk(volume->id().disk);
    disk->SetIdleSpinDown(sim::Seconds(60));
    ColdWorkloadOptions options2;
    options2.mean_interarrival_seconds = 60;
    options2.object_count = 10;
    ColdStorageStudy study(&cluster.sim(), volume, disk, options2, Rng(4));
    ColdStudyReport report;
    study.Run(sim::Seconds(1800),
              [&](ColdStudyReport r) { report = r; });
    cluster.RunFor(sim::Seconds(2000));
    return report;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.latency.count, b.latency.count);
  EXPECT_DOUBLE_EQ(a.latency.mean_ms, b.latency.mean_ms);
  EXPECT_DOUBLE_EQ(a.disk_energy, b.disk_energy);
  EXPECT_EQ(a.disk_spin_cycles, b.disk_spin_cycles);
}

}  // namespace
}  // namespace ustore::services
