#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "hw/usb.h"
#include "sim/simulator.h"

namespace ustore::hw {
namespace {

UsbTreeEntry DiskEntry(const std::string& name, const std::string& parent,
                       int tier) {
  return UsbTreeEntry{name, parent, tier, /*is_hub=*/false};
}

class UsbHostStackTest : public ::testing::Test {
 protected:
  UsbHostStackTest() : stack_(&sim_, "host-0") {
    stack_.set_attach_listener(
        [this](const std::string& device, UsbDeviceStatus status) {
          attach_events_.emplace_back(device, status);
          recognized_at_[device] = sim_.now();
        });
    stack_.set_detach_listener(
        [this](const std::string& device) { detached_.push_back(device); });
  }

  sim::Simulator sim_;
  UsbHostStack stack_;
  std::vector<std::pair<std::string, UsbDeviceStatus>> attach_events_;
  std::map<std::string, sim::Time> recognized_at_;
  std::vector<std::string> detached_;
};

TEST_F(UsbHostStackTest, SingleDeviceRecognizedAfterBaseDelay) {
  stack_.OnDeviceAttached(DiskEntry("disk-0", "hub-0", 2));
  sim_.Run();
  ASSERT_EQ(attach_events_.size(), 1u);
  EXPECT_EQ(attach_events_[0].second, UsbDeviceStatus::kRecognized);
  const auto& p = stack_.params();
  EXPECT_EQ(recognized_at_["disk-0"],
            p.recognition_base + p.recognition_serial);
  EXPECT_TRUE(stack_.IsRecognized("disk-0"));
}

TEST_F(UsbHostStackTest, BatchAttachIsSerialized) {
  // Fig. 6 part 1: recognition time grows with the number of disks switched
  // simultaneously.
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    stack_.OnDeviceAttached(DiskEntry("disk-" + std::to_string(i), "hub", 2));
  }
  sim_.Run();
  const auto& p = stack_.params();
  EXPECT_EQ(recognized_at_["disk-3"],
            p.recognition_base + n * p.recognition_serial);
  EXPECT_EQ(stack_.recognized_count(), n);
}

TEST_F(UsbHostStackTest, DetachDuringEnumerationCancelsRecognition) {
  stack_.OnDeviceAttached(DiskEntry("disk-0", "hub", 2));
  sim_.RunFor(sim::MillisD(100));
  stack_.OnDeviceDetached("disk-0");
  sim_.Run();
  EXPECT_FALSE(stack_.IsRecognized("disk-0"));
  for (const auto& [device, status] : attach_events_) {
    EXPECT_NE(status, UsbDeviceStatus::kRecognized);
  }
}

TEST_F(UsbHostStackTest, DetachNotifiesAfterNoticeDelay) {
  stack_.OnDeviceAttached(DiskEntry("disk-0", "hub", 2));
  sim_.Run();
  const sim::Time before = sim_.now();
  stack_.OnDeviceDetached("disk-0");
  sim_.Run();
  ASSERT_EQ(detached_.size(), 1u);
  EXPECT_EQ(detached_[0], "disk-0");
  EXPECT_EQ(sim_.now() - before, stack_.params().detach_notice);
}

TEST_F(UsbHostStackTest, DeviceLimitQuirk) {
  // The Intel xHCI quirk: only ~15 devices enumerate (§V-B).
  for (int i = 0; i < 20; ++i) {
    stack_.OnDeviceAttached(DiskEntry("disk-" + std::to_string(i), "hub", 2));
  }
  sim_.Run();
  EXPECT_EQ(stack_.recognized_count(), stack_.params().max_devices);
  int failed = 0;
  for (const auto& [device, status] : attach_events_) {
    if (status == UsbDeviceStatus::kEnumerationFailed) ++failed;
  }
  EXPECT_EQ(failed, 20 - stack_.params().max_devices);
}

TEST_F(UsbHostStackTest, TierLimitRejectsDeepDevices) {
  stack_.OnDeviceAttached(DiskEntry("deep", "hub", 6));
  sim_.Run();
  ASSERT_EQ(attach_events_.size(), 1u);
  EXPECT_EQ(attach_events_[0].second, UsbDeviceStatus::kEnumerationFailed);
}

TEST_F(UsbHostStackTest, ReattachAfterDetachWorks) {
  stack_.OnDeviceAttached(DiskEntry("disk-0", "hub", 2));
  sim_.Run();
  stack_.OnDeviceDetached("disk-0");
  sim_.Run();
  stack_.OnDeviceAttached(DiskEntry("disk-0", "hub", 2));
  sim_.Run();
  EXPECT_TRUE(stack_.IsRecognized("disk-0"));
}

TEST_F(UsbHostStackTest, ResetClearsEverything) {
  stack_.OnDeviceAttached(DiskEntry("disk-0", "hub", 2));
  sim_.Run();
  stack_.Reset();
  EXPECT_EQ(stack_.recognized_count(), 0);
  EXPECT_TRUE(stack_.RecognizedDevices().empty());
}

TEST_F(UsbHostStackTest, TreeReportListsRecognizedDevices) {
  stack_.OnDeviceAttached(UsbTreeEntry{"hub-0", "", 1, true});
  stack_.OnDeviceAttached(DiskEntry("disk-0", "hub-0", 2));
  sim_.Run();
  UsbTreeReport report = stack_.TreeReport();
  ASSERT_EQ(report.size(), 2u);
  // Report is name-ordered (map iteration) for determinism.
  EXPECT_EQ(report[0].device, "disk-0");
  EXPECT_EQ(report[0].parent, "hub-0");
  EXPECT_EQ(report[1].device, "hub-0");
  EXPECT_TRUE(report[1].is_hub);
}

TEST_F(UsbHostStackTest, LinkParamDefaults) {
  UsbHostControllerParams p;
  EXPECT_DOUBLE_EQ(ToMBps(p.root_link.cap_per_direction), 300.0);
  EXPECT_DOUBLE_EQ(ToMBps(p.root_link.cap_duplex_total), 540.0);
  EXPECT_EQ(p.max_devices, 15);
  EXPECT_EQ(p.max_tiers, 5);
}

}  // namespace
}  // namespace ustore::hw
