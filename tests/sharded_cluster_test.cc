// Determinism and behaviour tests for the real Cluster on the sharded
// engine (DESIGN.md §13, core/cluster_sharded.h).
//
// The central claim under test: running the live core::Cluster — Master,
// meta quorum, Controllers, EndPoints, real hw::Disk objects — under the
// sharded conservative-lookahead engine is bit-identical to the serial
// single-queue oracle at every shard/thread count, with and without chaos
// fault injection. "Bit-identical" means the full canonical report JSON
// (which embeds per-group metric snapshots and trace digests, the master's
// allocation-table digest and the pumped cluster simulator's event count
// and final clock), its FNV digest, and the engine event count.
#include "core/cluster_sharded.h"

#include <string>

#include "gtest/gtest.h"
#include "sim/time.h"

namespace ustore {
namespace {

// A small prototype deployment (4 hosts, 4 groups, 2 leaf hubs per group =
// 32 disks) tuned so 1.5 simulated seconds exercise every path: vectorized
// sweeps, spin-down/spin-up cycles with the §IV-F back-off, master
// directives, and — under chaos — fault toggles and the fallback-to-Disk
// route through the control pump.
core::ShardedClusterOptions FuzzOptions(std::uint64_t seed, bool chaos) {
  core::ShardedClusterOptions options;
  options.cluster.seed = seed;
  options.cluster.fabric.leaf_hubs_per_group = 2;
  options.cluster.fabric_manager.disk_params.spin_up_time = sim::Millis(500);
  options.cluster.endpoint.idle_spin_down = sim::Millis(400);
  options.duration = sim::Millis(1500);
  options.burst_period = sim::Millis(50);
  options.burst_ops = 16;
  options.request_size = KiB(256);
  options.sweep_width = 4;
  options.control_period = sim::Millis(100);
  options.report_period = sim::Millis(100);
  options.directive_every_ops = 1024;
  options.idle_timeout = sim::Millis(50);
  options.fault_probability = chaos ? 0.08 : 0.0;
  return options;
}

TEST(ShardedClusterDeterminismTest, BitIdenticalAcrossShardAndThreadCounts) {
  for (const bool chaos : {false, true}) {
    core::ShardedClusterOptions options = FuzzOptions(7, chaos);
    options.shards = 1;
    const core::ShardedClusterReport oracle =
        core::RunShardedCluster(options, /*use_sharded=*/false);
    const std::string oracle_json = oracle.ToJson();
    ASSERT_GT(oracle.events_processed, 100u);
    ASSERT_EQ(oracle.groups, 4);

    for (const int shards : {1, 2, 4, 8}) {  // 8 clamps to the 4 subtrees
      for (const int threads : {1, 4}) {
        core::ShardedClusterOptions run = FuzzOptions(7, chaos);
        run.shards = shards;
        run.threads = threads;
        const core::ShardedClusterReport sharded =
            core::RunShardedCluster(run, /*use_sharded=*/true);
        EXPECT_EQ(sharded.ToJson(), oracle_json)
            << "chaos=" << chaos << " shards=" << shards
            << " threads=" << threads;
        EXPECT_EQ(sharded.Digest(), oracle.Digest());
        EXPECT_EQ(sharded.events_processed, oracle.events_processed);
        EXPECT_EQ(sharded.cluster_events, oracle.cluster_events);
        EXPECT_EQ(sharded.control_trace_digest, oracle.control_trace_digest);
        for (int g = 0; g < oracle.groups; ++g) {
          EXPECT_EQ(sharded.per_group[g].trace_digest,
                    oracle.per_group[g].trace_digest)
              << "group " << g;
        }
      }
    }
  }
}

TEST(ShardedClusterDeterminismTest, SecondSeedMatchesUnderChaos) {
  // A second seed at the widest configuration, to catch schedule-dependent
  // luck in the first one.
  core::ShardedClusterOptions options = FuzzOptions(99, true);
  options.shards = 1;
  const core::ShardedClusterReport oracle =
      core::RunShardedCluster(options, false);
  core::ShardedClusterOptions run = FuzzOptions(99, true);
  run.shards = 4;
  run.threads = 4;
  const core::ShardedClusterReport sharded =
      core::RunShardedCluster(run, true);
  EXPECT_EQ(sharded.ToJson(), oracle.ToJson());
  EXPECT_EQ(sharded.events_processed, oracle.events_processed);
}

TEST(ShardedClusterDeterminismTest, OracleMatchesItselfAtEmulatedShards) {
  // The single-queue oracle emulates any shard count; the report must not
  // depend on the emulated count either.
  core::ShardedClusterOptions options = FuzzOptions(5, true);
  options.shards = 1;
  const std::string one = core::RunShardedCluster(options, false).ToJson();
  options.shards = 4;
  EXPECT_EQ(core::RunShardedCluster(options, false).ToJson(), one);
}

TEST(ShardedClusterTest, WorkloadExercisesTheRealCluster) {
  core::ShardedClusterOptions options = FuzzOptions(11, true);
  options.shards = 4;
  options.threads = 2;
  const core::ShardedClusterReport report =
      core::RunShardedCluster(options, true);

  EXPECT_EQ(report.groups, 4);
  std::uint64_t ops = 0, range_bursts = 0, spin_downs = 0, spin_cycles = 0;
  std::uint64_t faults = 0, acks = 0, fallback_ops = 0, directives = 0;
  for (const auto& grp : report.per_group) {
    EXPECT_EQ(grp.disks, 8);
    EXPECT_GE(grp.host, 0);
    EXPECT_GT(grp.bursts, 0u);
    EXPECT_GT(grp.reports_sent, 0u);
    EXPECT_NE(grp.trace_digest, 0u);
    ops += grp.ops;
    range_bursts += grp.range_bursts;
    spin_downs += grp.spin_downs;
    spin_cycles += grp.spin_cycles;
    faults += grp.faults_requested;
    acks += grp.fault_acks;
    fallback_ops += grp.fallback_ops;
    directives += grp.directives;
  }
  EXPECT_GT(ops, 0u);
  EXPECT_GT(range_bursts, 0u);   // the vectorized fast path ran
  EXPECT_GT(spin_downs, 0u);     // idle spin-down engaged
  EXPECT_GT(spin_cycles, 0u);    // and disks spun back up
  EXPECT_GT(faults, 0u);         // chaos injection ran
  EXPECT_GT(acks, 0u);           // the pump toggled real disks and acked
  EXPECT_GT(fallback_ops, 0u);   // I/O flowed through real hw::Disk objects
  EXPECT_GT(directives, 0u);     // master -> group control traffic
  EXPECT_EQ(report.master_directives, directives);

  // The real control plane stayed live and sane under the pump.
  EXPECT_GT(report.pumps, 0u);
  EXPECT_GE(report.active_master, 0);
  EXPECT_TRUE(report.master_index_ok);
  EXPECT_NE(report.allocations_digest, 0u);
  EXPECT_GT(report.cluster_events, 0u);
  EXPECT_GT(report.merged.counters.at("cluster.unit.io.ops"), 0u);
  EXPECT_GT(report.merged.counters.at("cluster.control.pumps"), 0u);
}

TEST(ShardedClusterTest, FaultFreeRunKeepsEveryDiskOnTheSoaPath) {
  core::ShardedClusterOptions options = FuzzOptions(3, false);
  options.shards = 2;
  const core::ShardedClusterReport report =
      core::RunShardedCluster(options, true);
  for (const auto& grp : report.per_group) {
    EXPECT_EQ(grp.mixed_bursts, 0u);
    EXPECT_EQ(grp.fallback_submits, 0u);
    EXPECT_EQ(grp.faults_requested, 0u);
    EXPECT_EQ(grp.bursts, grp.range_bursts);
  }
}

}  // namespace
}  // namespace ustore
