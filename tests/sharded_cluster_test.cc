// Determinism and behaviour tests for the real Cluster on the sharded
// engine (DESIGN.md §13, core/cluster_sharded.h).
//
// The central claim under test: running the live core::Cluster — Master,
// meta quorum, Controllers, EndPoints, real hw::Disk objects — under the
// sharded conservative-lookahead engine is bit-identical to the serial
// single-queue oracle at every shard/thread count, with and without chaos
// fault injection. "Bit-identical" means the full canonical report JSON
// (which embeds per-group metric snapshots and trace digests, the master's
// allocation-table digest and the pumped cluster simulator's event count
// and final clock), its FNV digest, and the engine event count.
#include "core/cluster_sharded.h"

#include <cstdint>
#include <string>

#include "core/master_shard.h"
#include "gtest/gtest.h"
#include "sim/time.h"

namespace ustore {
namespace {

// A small prototype deployment (4 hosts, 4 groups, 2 leaf hubs per group =
// 32 disks) tuned so 1.5 simulated seconds exercise every path: vectorized
// sweeps, spin-down/spin-up cycles with the §IV-F back-off, master
// directives, and — under chaos — fault toggles and the fallback-to-Disk
// route through the control pump.
core::ShardedClusterOptions FuzzOptions(std::uint64_t seed, bool chaos) {
  core::ShardedClusterOptions options;
  options.cluster.seed = seed;
  options.cluster.fabric.leaf_hubs_per_group = 2;
  options.cluster.fabric_manager.disk_params.spin_up_time = sim::Millis(500);
  options.cluster.endpoint.idle_spin_down = sim::Millis(400);
  options.duration = sim::Millis(1500);
  options.burst_period = sim::Millis(50);
  options.burst_ops = 16;
  options.request_size = KiB(256);
  options.sweep_width = 4;
  options.control_period = sim::Millis(100);
  options.report_period = sim::Millis(100);
  options.directive_every_ops = 1024;
  options.idle_timeout = sim::Millis(50);
  options.fault_probability = chaos ? 0.08 : 0.0;
  return options;
}

TEST(ShardedClusterDeterminismTest, BitIdenticalAcrossShardAndThreadCounts) {
  for (const bool chaos : {false, true}) {
    core::ShardedClusterOptions options = FuzzOptions(7, chaos);
    options.shards = 1;
    const core::ShardedClusterReport oracle =
        core::RunShardedCluster(options, /*use_sharded=*/false);
    const std::string oracle_json = oracle.ToJson();
    ASSERT_GT(oracle.events_processed, 100u);
    ASSERT_EQ(oracle.groups, 4);

    for (const int shards : {1, 2, 4, 8}) {  // 8 clamps to the 4 subtrees
      for (const int threads : {1, 4}) {
        core::ShardedClusterOptions run = FuzzOptions(7, chaos);
        run.shards = shards;
        run.threads = threads;
        const core::ShardedClusterReport sharded =
            core::RunShardedCluster(run, /*use_sharded=*/true);
        EXPECT_EQ(sharded.ToJson(), oracle_json)
            << "chaos=" << chaos << " shards=" << shards
            << " threads=" << threads;
        EXPECT_EQ(sharded.Digest(), oracle.Digest());
        EXPECT_EQ(sharded.events_processed, oracle.events_processed);
        EXPECT_EQ(sharded.cluster_events, oracle.cluster_events);
        EXPECT_EQ(sharded.control_trace_digest, oracle.control_trace_digest);
        for (int g = 0; g < oracle.groups; ++g) {
          EXPECT_EQ(sharded.per_group[g].trace_digest,
                    oracle.per_group[g].trace_digest)
              << "group " << g;
        }
      }
    }
  }
}

TEST(ShardedClusterDeterminismTest, SecondSeedMatchesUnderChaos) {
  // A second seed at the widest configuration, to catch schedule-dependent
  // luck in the first one.
  core::ShardedClusterOptions options = FuzzOptions(99, true);
  options.shards = 1;
  const core::ShardedClusterReport oracle =
      core::RunShardedCluster(options, false);
  core::ShardedClusterOptions run = FuzzOptions(99, true);
  run.shards = 4;
  run.threads = 4;
  const core::ShardedClusterReport sharded =
      core::RunShardedCluster(run, true);
  EXPECT_EQ(sharded.ToJson(), oracle.ToJson());
  EXPECT_EQ(sharded.events_processed, oracle.events_processed);
}

TEST(ShardedClusterDeterminismTest, OracleMatchesItselfAtEmulatedShards) {
  // The single-queue oracle emulates any shard count; the report must not
  // depend on the emulated count either.
  core::ShardedClusterOptions options = FuzzOptions(5, true);
  options.shards = 1;
  const std::string one = core::RunShardedCluster(options, false).ToJson();
  options.shards = 4;
  EXPECT_EQ(core::RunShardedCluster(options, false).ToJson(), one);
}

TEST(ShardedClusterTest, WorkloadExercisesTheRealCluster) {
  core::ShardedClusterOptions options = FuzzOptions(11, true);
  options.shards = 4;
  options.threads = 2;
  const core::ShardedClusterReport report =
      core::RunShardedCluster(options, true);

  EXPECT_EQ(report.groups, 4);
  std::uint64_t ops = 0, range_bursts = 0, spin_downs = 0, spin_cycles = 0;
  std::uint64_t faults = 0, acks = 0, fallback_ops = 0, directives = 0;
  for (const auto& grp : report.per_group) {
    EXPECT_EQ(grp.disks, 8);
    EXPECT_GE(grp.host, 0);
    EXPECT_GT(grp.bursts, 0u);
    EXPECT_GT(grp.reports_sent, 0u);
    EXPECT_NE(grp.trace_digest, 0u);
    ops += grp.ops;
    range_bursts += grp.range_bursts;
    spin_downs += grp.spin_downs;
    spin_cycles += grp.spin_cycles;
    faults += grp.faults_requested;
    acks += grp.fault_acks;
    fallback_ops += grp.fallback_ops;
    directives += grp.directives;
  }
  EXPECT_GT(ops, 0u);
  EXPECT_GT(range_bursts, 0u);   // the vectorized fast path ran
  EXPECT_GT(spin_downs, 0u);     // idle spin-down engaged
  EXPECT_GT(spin_cycles, 0u);    // and disks spun back up
  EXPECT_GT(faults, 0u);         // chaos injection ran
  EXPECT_GT(acks, 0u);           // the pump toggled real disks and acked
  EXPECT_GT(fallback_ops, 0u);   // I/O flowed through real hw::Disk objects
  EXPECT_GT(directives, 0u);     // master -> group control traffic
  EXPECT_EQ(report.master_directives, directives);

  // The real control plane stayed live and sane under the pump.
  EXPECT_GT(report.pumps, 0u);
  EXPECT_GE(report.active_master, 0);
  EXPECT_TRUE(report.master_index_ok);
  EXPECT_NE(report.allocations_digest, 0u);
  EXPECT_GT(report.cluster_events, 0u);
  EXPECT_GT(report.merged.counters.at("cluster.unit.io.ops"), 0u);
  EXPECT_GT(report.merged.counters.at("cluster.control.pumps"), 0u);
}

// ---------------------------------------------------------------------------
// Sharded Master: per-group meta leases (DESIGN.md §15).

// FuzzOptions with the sharded Master on: meta lookups on every burst, a
// short sync cadence, and — under chaos — host crashes driving the lease
// revoke / park / re-grant path on top of the fault toggles.
core::ShardedClusterOptions ShardedMasterOptions(std::uint64_t seed,
                                                 bool chaos) {
  core::ShardedClusterOptions options = FuzzOptions(seed, chaos);
  options.sharded_master = true;
  options.meta_lookups_per_burst = 2;
  options.lease_sync_every = 4;
  if (chaos) {
    options.host_crash_probability = 0.04;
    options.host_crash_downtime = sim::Millis(250);
  }
  return options;
}

TEST(ShardedMasterDeterminismTest, BitIdenticalAcrossShardAndThreadCounts) {
  for (const bool chaos : {false, true}) {
    core::ShardedClusterOptions options = ShardedMasterOptions(7, chaos);
    options.shards = 1;
    const core::ShardedClusterReport oracle =
        core::RunShardedCluster(options, /*use_sharded=*/false);
    const std::string oracle_json = oracle.ToJson();
    ASSERT_GT(oracle.events_processed, 100u);

    for (const int shards : {1, 2, 4, 8}) {
      for (const int threads : {1, 4}) {
        core::ShardedClusterOptions run = ShardedMasterOptions(7, chaos);
        run.shards = shards;
        run.threads = threads;
        const core::ShardedClusterReport sharded =
            core::RunShardedCluster(run, /*use_sharded=*/true);
        EXPECT_EQ(sharded.ToJson(), oracle_json)
            << "chaos=" << chaos << " shards=" << shards
            << " threads=" << threads;
        EXPECT_EQ(sharded.Digest(), oracle.Digest());
        EXPECT_EQ(sharded.events_processed, oracle.events_processed);
      }
    }
  }
}

TEST(ShardedMasterDeterminismTest, FuzzedSeedsMatchUnderCrashChaos) {
  // More seeds at the widest configuration: the lease grant/revoke timing
  // interleaves with crash windows differently per seed, which is exactly
  // the schedule space the digest must be independent of.
  for (const std::uint64_t seed : {23u, 57u, 121u}) {
    core::ShardedClusterOptions options = ShardedMasterOptions(seed, true);
    options.shards = 1;
    const core::ShardedClusterReport oracle =
        core::RunShardedCluster(options, false);
    core::ShardedClusterOptions run = ShardedMasterOptions(seed, true);
    run.shards = 4;
    run.threads = 4;
    const core::ShardedClusterReport sharded =
        core::RunShardedCluster(run, true);
    EXPECT_EQ(sharded.ToJson(), oracle.ToJson()) << "seed=" << seed;
    EXPECT_EQ(sharded.events_processed, oracle.events_processed);
  }
}

TEST(ShardedMasterTest, LeasesMoveMetaDecisionsOffThePump) {
  // Same deployment with and without the sharded Master: leases must move
  // the meta traffic from pump round-trips to shard-local decisions.
  core::ShardedClusterOptions central = FuzzOptions(31, false);
  central.meta_lookups_per_burst = 2;
  central.shards = 4;
  const core::ShardedClusterReport before =
      core::RunShardedCluster(central, true);

  core::ShardedClusterOptions leased = ShardedMasterOptions(31, false);
  leased.shards = 4;
  const core::ShardedClusterReport after =
      core::RunShardedCluster(leased, true);

  // Central mode: every lookup is a pump round-trip, nothing is local.
  std::uint64_t central_lookups = 0;
  for (const auto& grp : before.per_group) {
    EXPECT_EQ(grp.meta_lookups_local, 0u);
    EXPECT_EQ(grp.meta_lookup_acks, grp.meta_lookups);
    EXPECT_EQ(grp.lease_grants, 0u);
    EXPECT_EQ(grp.local_decisions, 0u);
    central_lookups += grp.meta_lookups;
  }
  EXPECT_GT(central_lookups, 0u);
  EXPECT_EQ(before.central_meta_lookups, central_lookups);
  EXPECT_EQ(before.lease_grants, 0u);

  // Leased mode: every group holds a lease, and the overwhelming share of
  // lookups/heartbeats/directives resolve on the group's own shard.
  EXPECT_EQ(after.lease_grants, static_cast<std::uint64_t>(after.groups));
  EXPECT_EQ(after.lease_revokes, 0u);  // no chaos: nothing revokes
  std::uint64_t local = 0, escalated = 0, local_directives = 0;
  for (const auto& grp : after.per_group) {
    EXPECT_EQ(grp.lease_grants, 1u);
    EXPECT_EQ(grp.lease_stale_rejects, 0u);
    EXPECT_EQ(grp.meta_lookups, grp.meta_lookups_local + grp.meta_lookup_acks);
    EXPECT_GT(grp.meta_lookups_local, grp.meta_lookup_acks);
    EXPECT_GT(grp.local_decisions, 0u);
    local += grp.meta_lookups_local;
    escalated += grp.meta_lookup_acks;
    local_directives += grp.local_directives;
  }
  EXPECT_GT(local, escalated);
  EXPECT_EQ(after.central_meta_lookups, escalated);
  // Steady-state directives are decided locally once leases are held; the
  // central pump only directed the pre-grant window.
  EXPECT_GT(local_directives, 0u);
  EXPECT_LT(after.master_directives, before.master_directives);
}

TEST(ShardedMasterTest, HostCrashRevokesParksAndRegrants) {
  core::ShardedClusterOptions options = ShardedMasterOptions(43, true);
  options.shards = 4;
  options.threads = 2;
  // Crash hard enough that several grant->revoke->re-grant round trips
  // happen inside the horizon.
  options.host_crash_probability = 0.10;
  const core::ShardedClusterReport report =
      core::RunShardedCluster(options, true);

  EXPECT_GT(report.host_crashes, 0u);
  EXPECT_GT(report.host_restarts, 0u);
  EXPECT_GT(report.lease_revokes, 0u);
  // Every revoke was re-granted after the host restarted (plus the initial
  // grant per group), so grants strictly exceed revokes.
  EXPECT_GT(report.lease_grants, report.lease_revokes);
  EXPECT_GE(report.lease_grants,
            static_cast<std::uint64_t>(report.groups));
  std::uint64_t crash_requests = 0;
  for (const auto& grp : report.per_group) {
    crash_requests += grp.host_crashes_requested;
    // Epoch discipline held: nothing stale was ever applied (the pump's
    // source-FIFO posts arrive in order; the guard is belt-and-braces).
    EXPECT_EQ(grp.lease_stale_rejects, 0u);
  }
  EXPECT_GE(crash_requests, report.host_crashes);  // dedup'd by the pump
  EXPECT_TRUE(report.master_index_ok);
}

// ---------------------------------------------------------------------------
// core::MasterShard unit behaviour.

TEST(MasterShardTest, GrantRevokeEpochDiscipline) {
  core::MasterShardOptions options;
  options.directive_every_ops = 100;
  options.lease_sync_every = 2;
  core::MasterShard shard(options);
  EXPECT_FALSE(shard.lease_held());
  EXPECT_FALSE(shard.OnReport(10).local);  // leaseless: escalate

  core::MetaLeaseIndex index;
  index.disk_host = {3, 3, 5};
  index.disk_failed = {0, 0, 1};
  index.ops_baseline = 250;
  ASSERT_TRUE(shard.Grant(1, index));
  EXPECT_TRUE(shard.lease_held());
  EXPECT_EQ(shard.lease_epoch(), 1u);

  // Stale epochs (<= last applied) are rejected and counted, whether they
  // are grants or revokes.
  EXPECT_FALSE(shard.Grant(1, index));
  EXPECT_FALSE(shard.Revoke(0));
  EXPECT_EQ(shard.stale_rejected(), 2u);
  EXPECT_TRUE(shard.lease_held());

  // A fresh-epoch revoke takes effect; a re-grant needs a newer epoch yet.
  ASSERT_TRUE(shard.Revoke(2));
  EXPECT_FALSE(shard.lease_held());
  EXPECT_FALSE(shard.Grant(2, index));
  ASSERT_TRUE(shard.Grant(3, index));
  EXPECT_TRUE(shard.lease_held());
  EXPECT_EQ(shard.grants(), 2u);
  EXPECT_EQ(shard.revokes(), 1u);
}

TEST(MasterShardTest, LookupHonorsMirrorAndBounds) {
  core::MasterShard shard({});
  core::MetaLeaseIndex index;
  index.disk_host = {7, 8};
  index.disk_failed = {0, 1};
  ASSERT_TRUE(shard.Grant(1, index));
  EXPECT_EQ(shard.LookupHost(0), 7);
  EXPECT_EQ(shard.LookupHost(1), -1);  // failed in the mirror
  EXPECT_EQ(shard.LookupHost(2), -1);  // out of range
  EXPECT_EQ(shard.LookupHost(-1), -1);
  EXPECT_EQ(shard.local_lookups(), 4u);

  // Mirror maintenance: heal disk 1, fail disk 0.
  shard.NoteFault(1, false);
  shard.NoteFault(0, true);
  EXPECT_EQ(shard.LookupHost(1), 8);
  EXPECT_EQ(shard.LookupHost(0), -1);
  EXPECT_TRUE(shard.ReadmitAfterHeal(0, true));
  EXPECT_EQ(shard.LookupHost(0), 7);
  EXPECT_FALSE(shard.ReadmitAfterHeal(0, false));  // decision == eligibility
  EXPECT_EQ(shard.local_readmits(), 2u);
}

TEST(MasterShardTest, DirectiveFlipsResumeFromBaselineAndSyncCadenceHolds) {
  core::MasterShardOptions options;
  options.directive_every_ops = 100;
  options.lease_sync_every = 3;
  core::MasterShard shard(options);
  core::MetaLeaseIndex index;
  index.ops_baseline = 250;  // the pump already directed up to 250
  ASSERT_TRUE(shard.Grant(1, index));
  EXPECT_EQ(shard.directed_at(), 250u);

  // 320 ops: not yet 100 past the baseline — no flip re-issued.
  auto d = shard.OnReport(320);
  EXPECT_TRUE(d.local);
  EXPECT_EQ(d.directives, 0);
  EXPECT_FALSE(d.sync_due);

  // 561 ops: three flips due (350, 450, 550); cursor parks at 550.
  d = shard.OnReport(561);
  EXPECT_EQ(d.directives, 3);
  EXPECT_EQ(shard.directed_at(), 550u);

  // Reports are monotonic: a stale/duplicate total never rolls back.
  d = shard.OnReport(400);
  EXPECT_EQ(d.directives, 0);
  EXPECT_EQ(shard.directed_at(), 550u);
  // Third report under lease_sync_every=3: the sync escalates now.
  EXPECT_TRUE(d.sync_due);
  EXPECT_EQ(shard.syncs_due(), 1u);
  EXPECT_EQ(shard.heartbeats(), 3u);
  EXPECT_EQ(shard.local_directives(), 3u);
}

TEST(ShardedClusterTest, FaultFreeRunKeepsEveryDiskOnTheSoaPath) {
  core::ShardedClusterOptions options = FuzzOptions(3, false);
  options.shards = 2;
  const core::ShardedClusterReport report =
      core::RunShardedCluster(options, true);
  for (const auto& grp : report.per_group) {
    EXPECT_EQ(grp.mixed_bursts, 0u);
    EXPECT_EQ(grp.fallback_submits, 0u);
    EXPECT_EQ(grp.faults_requested, 0u);
    EXPECT_EQ(grp.bursts, grp.range_bursts);
  }
}

}  // namespace
}  // namespace ustore
