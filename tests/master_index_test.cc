// Master reverse-index coverage (DESIGN.md §8).
//
// The Master's heartbeat and failover paths no longer scan allocations_;
// they rely on the disk->spaces, host->disks and per-disk exposed-host
// indexes. These tests pin (a) the behaviour the indexes replaced — admin
// disk moves still trigger re-exposure on the new host — and (b) the index
// invariants themselves, by driving a seeded random mix of allocate /
// release / host-crash / admin-move operations through a live cluster and
// asserting Master::CheckIndexesForTest after every step (the fuzz-driver
// pattern of consensus_fuzz_test.cc).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "obs/metrics.h"

namespace ustore::core {
namespace {

class MasterIndexTest : public ::testing::Test {
 protected:
  MasterIndexTest() { cluster_.Start(); }

  Result<ClientLib::Volume*> AllocateSync(ClientLib* client,
                                          const std::string& service,
                                          Bytes size) {
    Result<ClientLib::Volume*> out = InternalError("pending");
    client->AllocateAndMount(service, size,
                             [&](Result<ClientLib::Volume*> r) { out = r; });
    cluster_.RunFor(sim::Seconds(10));
    return out;
  }

  Status MoveDisksToHost(const std::vector<std::string>& disks, int host) {
    net::RpcEndpoint admin(&cluster_.sim(), &cluster_.network(),
                           "index-admin");
    auto request = std::make_shared<ScheduleRequest>();
    for (const std::string& disk : disks) {
      request->moves.push_back(DiskHostPair{disk, host});
    }
    Status status = InternalError("pending");
    admin.Call("ctrl-0-0", request, sim::Seconds(60),
               [&](Result<net::MessagePtr> r) { status = r.status(); });
    cluster_.RunFor(sim::Seconds(30));
    return status;
  }

  void ExpectIndexesConsistent(const char* when) {
    Master* master = cluster_.active_master();
    ASSERT_NE(master, nullptr) << when;
    std::string why;
    EXPECT_TRUE(master->CheckIndexesForTest(&why)) << when << ": " << why;
  }

  Cluster cluster_;
};

// Regression: with re-exposure driven by the per-disk exposed-host counts
// (not an allocation scan), an admin-initiated disk move must still cause
// the Master to re-expose the disk's spaces on the new host, and clients
// must find the space there.
TEST_F(MasterIndexTest, AdminDiskMoveStillTriggersReExposure) {
  auto client = cluster_.MakeClient("client");
  auto volume = AllocateSync(client.get(), "svc", GiB(10));
  ASSERT_TRUE(volume.ok()) << volume.status();
  const std::string disk = (*volume)->id().disk;
  Master* master = cluster_.active_master();
  const int old_host = master->CurrentHostOfDisk(disk);
  const int new_host = (old_host + 1) % cluster_.host_count();

  // Group-granularity fabric: move the whole group of the disk's host.
  std::vector<std::string> group;
  for (int d = 0; d < 16; ++d) {
    const std::string name = "disk-" + std::to_string(d);
    if (master->CurrentHostOfDisk(name) == old_host) group.push_back(name);
  }
  ASSERT_TRUE(MoveDisksToHost(group, new_host).ok());
  cluster_.RunFor(sim::Seconds(30));

  EXPECT_EQ(master->CurrentHostOfDisk(disk), new_host);
  Result<LookupResponse> lookup = InternalError("pending");
  client->Lookup((*volume)->id(),
                 [&](Result<LookupResponse> r) { lookup = r; });
  cluster_.RunFor(sim::Seconds(5));
  ASSERT_TRUE(lookup.ok()) << lookup.status();
  EXPECT_TRUE(lookup->available);
  EXPECT_EQ(lookup->host, cluster_.endpoint(new_host)->id())
      << "space not re-exposed on the new host";
  ExpectIndexesConsistent("after admin move");
}

// Deterministic time: delta beats alone must keep attributed disks from
// tripping disk_missing_timeout (the Master refreshes last_seen for
// `present` disks), while a really-missing disk still ages out.
TEST_F(MasterIndexTest, DeltaHeartbeatsKeepDisksAlive) {
  Master* master = cluster_.active_master();
  ASSERT_NE(master, nullptr);
  // Far beyond disk_missing_timeout (10 s) with a steady fabric: no disk
  // may be flagged failed even though most beats carry no disk list.
  cluster_.RunFor(sim::Seconds(60));
  for (int d = 0; d < 16; ++d) {
    EXPECT_EQ(master->CurrentHostOfDisk("disk-" + std::to_string(d)) >= 0,
              true);
  }
  const auto snapshot = obs::Metrics().Snapshot();
  auto full = snapshot.counters.find("endpoint.heartbeats_full");
  auto delta = snapshot.counters.find("endpoint.heartbeats_delta");
  ASSERT_NE(delta, snapshot.counters.end());
  ASSERT_NE(full, snapshot.counters.end());
  EXPECT_GT(delta->second, full->second)
      << "steady state should be dominated by delta beats";
  ExpectIndexesConsistent("after steady state");
}

// Property test: a seeded random mix of control-plane operations never
// breaks the reverse-index invariants.
class MasterIndexFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MasterIndexFuzzTest, IndexesStayConsistent) {
  ClusterOptions options;
  options.seed = GetParam();
  Cluster cluster(options);
  cluster.Start();
  Rng rng(GetParam() * 7919 + 17);

  auto client = cluster.MakeClient("fuzz-client");
  std::vector<ClientLib::Volume*> volumes;
  int crashed_host = -1;

  auto check = [&](const std::string& when) {
    Master* master = cluster.active_master();
    if (master == nullptr) return;  // mid-election; checked next round
    std::string why;
    ASSERT_TRUE(master->CheckIndexesForTest(&why))
        << "seed " << GetParam() << ", " << when << ": " << why;
  };

  for (int step = 0; step < 24; ++step) {
    const int op = static_cast<int>(rng.NextBelow(10));
    if (op < 4) {
      // Allocate (sometimes pinned to a random disk).
      auto done = std::make_shared<Result<ClientLib::Volume*>>(
          InternalError("pending"));
      const Bytes size = GiB(1 + static_cast<Bytes>(rng.NextBelow(8)));
      if (rng.NextBool(0.3)) {
        const std::string disk =
            "disk-" + std::to_string(rng.NextBelow(16));
        client->AllocateAndMountOnDisk(
            "fuzz-svc", size, disk,
            [done](Result<ClientLib::Volume*> r) { *done = r; });
      } else {
        client->AllocateAndMount(
            "fuzz-svc", size,
            [done](Result<ClientLib::Volume*> r) { *done = r; });
      }
      cluster.RunFor(sim::Seconds(8));
      if (done->ok()) volumes.push_back(**done);
      check("after allocate");
    } else if (op < 6 && !volumes.empty()) {
      // Release a random volume.
      const std::size_t pick = rng.NextBelow(volumes.size());
      const SpaceId id = volumes[pick]->id();
      volumes.erase(volumes.begin() + static_cast<std::ptrdiff_t>(pick));
      client->Release(id, "fuzz-svc", [](Status) {});
      cluster.RunFor(sim::Seconds(3));
      check("after release");
    } else if (op < 7 && crashed_host < 0 && cluster.host_count() > 1) {
      // Crash a host and let failover re-home its disks.
      crashed_host = static_cast<int>(rng.NextBelow(
          static_cast<std::uint64_t>(cluster.host_count())));
      cluster.CrashHost(crashed_host);
      cluster.RunFor(sim::Seconds(40));
      check("after host crash");
    } else if (op < 8 && crashed_host >= 0) {
      cluster.RestartHost(crashed_host);
      crashed_host = -1;
      cluster.RunFor(sim::Seconds(20));
      check("after host restart");
    } else {
      cluster.RunFor(sim::Seconds(2));
      check("after idle");
    }
  }
  cluster.RunFor(sim::Seconds(30));
  check("final");
  // The canonical dump renders every allocation exactly once.
  Master* master = cluster.active_master();
  ASSERT_NE(master, nullptr);
  const std::string dump = master->DumpAllocations();
  std::size_t lines = 0;
  for (char c : dump) lines += c == '\n';
  EXPECT_EQ(lines, master->allocation_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MasterIndexFuzzTest,
                         ::testing::Values(1u, 7u, 23u, 1234u));

}  // namespace
}  // namespace ustore::core
