// Property tests for the redundancy layer: Sequential-Checking placement
// (reallocation-free scale-out, balance bound, failure-domain separation,
// fuzzed over seeds and geometries), the declustered rebuild planner, the
// rebuild time model (flat vs the serial agent's linear growth) and the
// MTTDL estimators.
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "fabric/builders.h"
#include "fabric/failure_domains.h"
#include "fabric/placement.h"
#include "services/redundancy.h"

namespace ustore {
namespace {

using fabric::ChunkLocation;
using fabric::DeclusteredPlacement;
using fabric::PlacementOptions;
using services::redundancy::MttdlOptions;
using services::redundancy::PlanRebuild;
using services::redundancy::RebuildPlan;
using services::redundancy::RebuildTimeModel;
using services::redundancy::Stripe;
using services::redundancy::StripeMap;

struct Geometry {
  int data_chunks;
  int parity_chunks;
  int domains;
  int disks_per_domain;
};

const Geometry kGeometries[] = {
    {2, 1, 5, 2},
    {4, 2, 9, 3},
    {8, 3, 16, 4},
    {8, 3, 40, 4},
    {3, 0, 7, 1},
};

StripeMap MakeMap(const Geometry& g, std::uint64_t seed) {
  PlacementOptions options;
  options.data_chunks = g.data_chunks;
  options.parity_chunks = g.parity_chunks;
  options.seed = seed;
  StripeMap map(options);
  map.layout().AddDomains(g.domains, g.disks_per_domain);
  return map;
}

void CheckDomainSeparation(const StripeMap& map) {
  for (const Stripe& stripe : map.stripes()) {
    std::set<int> domains;
    for (const ChunkLocation& chunk : stripe.chunks) {
      EXPECT_EQ(map.layout().domain_of_disk(chunk.disk), chunk.domain);
      EXPECT_TRUE(domains.insert(chunk.domain).second)
          << "stripe " << stripe.id << " has two chunks in domain "
          << chunk.domain;
    }
  }
}

void CheckBalance(const StripeMap& map) {
  int max_load = 0;
  for (int d = 0; d < map.layout().disks(); ++d) {
    max_load = std::max(max_load, map.layout().disk_load(d));
  }
  EXPECT_LE(max_load, map.layout().BalanceBound());
}

// Disk loads must equal a recount over the stored stripes — any hidden
// relocation or double-count breaks this conservation law.
void CheckLoadConservation(const StripeMap& map) {
  std::vector<int> recount(map.layout().disks(), 0);
  for (const Stripe& stripe : map.stripes()) {
    for (const ChunkLocation& chunk : stripe.chunks) ++recount[chunk.disk];
  }
  for (int d = 0; d < map.layout().disks(); ++d) {
    EXPECT_EQ(recount[d], map.layout().disk_load(d)) << "disk " << d;
  }
}

TEST(PlacementProperty, DomainSeparationAndBalanceFuzzed) {
  for (const Geometry& g : kGeometries) {
    for (std::uint64_t seed = 1; seed <= 7; ++seed) {
      StripeMap map = MakeMap(g, seed);
      ASSERT_TRUE(map.AppendMany(200).ok());
      CheckDomainSeparation(map);
      CheckBalance(map);
      CheckLoadConservation(map);
    }
  }
}

TEST(PlacementProperty, SteadyStateEvenness) {
  // Pre-scale-out, sequential checking keeps every disk within a couple
  // of chunks of perfectly even once the unit has wrapped a few times.
  StripeMap map = MakeMap({8, 3, 20, 4}, 99);
  ASSERT_TRUE(map.AppendMany(400).ok());
  int min_load = 1 << 30, max_load = 0;
  for (int d = 0; d < map.layout().disks(); ++d) {
    min_load = std::min(min_load, map.layout().disk_load(d));
    max_load = std::max(max_load, map.layout().disk_load(d));
  }
  EXPECT_LE(max_load - min_load, 2);
}

TEST(PlacementProperty, ScaleOutMovesNothingFuzzed) {
  for (const Geometry& g : kGeometries) {
    for (std::uint64_t seed = 11; seed <= 15; ++seed) {
      StripeMap map = MakeMap(g, seed);
      ASSERT_TRUE(map.AppendMany(120).ok());

      // Snapshot every placed chunk, then scale out and keep writing.
      std::vector<std::vector<ChunkLocation>> before;
      for (const Stripe& stripe : map.stripes()) {
        before.push_back(stripe.chunks);
      }
      map.layout().AddDomains(g.domains / 2 + 1, g.disks_per_domain);
      ASSERT_TRUE(map.AppendMany(240).ok());

      // Reallocation-free: not one pre-existing chunk moved.
      for (std::size_t s = 0; s < before.size(); ++s) {
        EXPECT_EQ(before[s], map.stripe(s).chunks) << "stripe " << s;
      }
      CheckDomainSeparation(map);
      CheckBalance(map);
      CheckLoadConservation(map);
    }
  }
}

TEST(PlacementProperty, NewCapacityFillsFromNewWrites) {
  StripeMap map = MakeMap({4, 2, 12, 2}, 3);
  ASSERT_TRUE(map.AppendMany(200).ok());
  const int old_disks = map.layout().disks();
  map.layout().AddDomains(6, 2);
  ASSERT_TRUE(map.AppendMany(200).ok());
  // The emptier new disks must have absorbed writes without any transfer.
  int new_disk_chunks = 0;
  for (int d = old_disks; d < map.layout().disks(); ++d) {
    new_disk_chunks += map.layout().disk_load(d);
  }
  EXPECT_GT(new_disk_chunks, 0);
  CheckBalance(map);
}

TEST(PlacementProperty, DeterministicAcrossInstances) {
  const Geometry g{8, 3, 16, 4};
  StripeMap a = MakeMap(g, 7);
  StripeMap b = MakeMap(g, 7);
  ASSERT_TRUE(a.AppendMany(100).ok());
  ASSERT_TRUE(b.AppendMany(100).ok());
  for (std::size_t s = 0; s < a.count(); ++s) {
    EXPECT_EQ(a.stripe(s).chunks, b.stripe(s).chunks);
  }
  // Different seed, different layout (declustering actually varies).
  StripeMap c = MakeMap(g, 8);
  ASSERT_TRUE(c.AppendMany(100).ok());
  bool any_difference = false;
  for (std::size_t s = 0; s < a.count() && !any_difference; ++s) {
    any_difference = a.stripe(s).chunks != c.stripe(s).chunks;
  }
  EXPECT_TRUE(any_difference);
}

TEST(PlacementProperty, RefusesUndersizedUnit) {
  PlacementOptions options;
  options.data_chunks = 8;
  options.parity_chunks = 3;
  DeclusteredPlacement layout(options);
  layout.AddDomains(10, 4);  // 10 domains < 11 chunks
  EXPECT_EQ(layout.PlaceStripe(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChunkTagCode, RoundTripsForEveryChunk) {
  for (std::uint64_t tag : {0ULL, 1ULL, 42ULL, 0xDEADBEEFCAFEF00DULL}) {
    for (int chunk = 0; chunk < 16; ++chunk) {
      const std::uint64_t encoded = services::redundancy::ChunkTag(tag, chunk);
      EXPECT_EQ(services::redundancy::StripeTagFromChunk(encoded, chunk), tag);
      // A different chunk index must NOT decode to the same generator —
      // that is exactly how misdirected reads get detected.
      EXPECT_NE(services::redundancy::StripeTagFromChunk(encoded, chunk + 1),
                tag);
    }
  }
}

TEST(RebuildPlanner, DeclustersReadsAndSparesExcludeSurvivors) {
  StripeMap map = MakeMap({8, 3, 40, 4}, 21);
  ASSERT_TRUE(map.AppendMany(300).ok());
  int failed = 0;  // pick the busiest disk so the plan is non-trivial
  for (int d = 0; d < map.layout().disks(); ++d) {
    if (map.layout().disk_load(d) > map.layout().disk_load(failed)) {
      failed = d;
    }
  }
  const int lost_chunks =
      static_cast<int>(map.ChunksOnDisk(failed).size());
  ASSERT_GT(lost_chunks, 0);

  Result<RebuildPlan> plan = PlanRebuild(map, failed, /*apply=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(static_cast<int>(plan->ops.size()), lost_chunks);
  EXPECT_EQ(plan->total_chunk_reads, lost_chunks * 8);
  EXPECT_EQ(plan->total_chunk_writes, lost_chunks);
  EXPECT_EQ(plan->disk_reads[failed] + plan->disk_writes[failed], 0);

  for (const auto& op : plan->ops) {
    EXPECT_EQ(static_cast<int>(op.reads.size()), 8);  // k reads, not k+m-1
    const Stripe& stripe = map.stripe(op.stripe);
    std::set<int> surviving_domains;
    for (int c = 0; c < static_cast<int>(stripe.chunks.size()); ++c) {
      if (c != op.lost_chunk) surviving_domains.insert(stripe.chunks[c].domain);
    }
    for (const ChunkLocation& read : op.reads) {
      EXPECT_NE(read.disk, failed);
    }
    EXPECT_EQ(surviving_domains.count(op.spare.domain), 0u);
    EXPECT_NE(op.spare.disk, failed);
  }

  // Declustered: the busiest disk carries a small slice of the total work
  // (a serial mirror copy would put all reads on one disk).
  EXPECT_LT(plan->max_disk_ops * 8, plan->total_chunk_reads);
  EXPECT_GT(plan->disks_touched, 8);

  // Pure function: planning twice without apply gives the identical plan.
  Result<RebuildPlan> again = PlanRebuild(map, failed, /*apply=*/false);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(plan->ops.size(), again->ops.size());
  for (std::size_t i = 0; i < plan->ops.size(); ++i) {
    EXPECT_EQ(plan->ops[i].stripe, again->ops[i].stripe);
    EXPECT_EQ(plan->ops[i].spare, again->ops[i].spare);
    EXPECT_EQ(plan->ops[i].reads, again->ops[i].reads);
  }
}

TEST(RebuildPlanner, ApplyDrainsFailedDiskAndKeepsInvariants) {
  StripeMap map = MakeMap({4, 2, 12, 3}, 5);
  ASSERT_TRUE(map.AppendMany(150).ok());
  const int failed = 7;
  ASSERT_FALSE(map.ChunksOnDisk(failed).empty());

  Result<RebuildPlan> plan = PlanRebuild(map, failed, /*apply=*/true);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(map.ChunksOnDisk(failed).empty());
  EXPECT_EQ(map.layout().disk_load(failed), 0);
  CheckDomainSeparation(map);
  CheckLoadConservation(map);
}

TEST(RebuildTimeModel, DeclusteredFlatSerialLinear) {
  RebuildTimeModel model;
  // Same per-disk data, four unit sizes: the failed disk always loses the
  // same number of chunks, but a bigger unit spreads the rebuild wider.
  const int per_disk_chunks = 6;
  std::vector<sim::Duration> declustered;
  for (int domains : {25, 50, 100}) {
    StripeMap map = MakeMap({8, 3, domains, 4}, 77);
    const int disks = domains * 4;
    const int stripes = per_disk_chunks * disks / 11;
    ASSERT_TRUE(map.AppendMany(stripes).ok());
    int failed = 0;
    for (int d = 0; d < disks; ++d) {
      if (map.layout().disk_load(d) > map.layout().disk_load(failed)) {
        failed = d;
      }
    }
    Result<RebuildPlan> plan = PlanRebuild(map, failed, /*apply=*/false);
    ASSERT_TRUE(plan.ok());
    declustered.push_back(
        DeclusteredRebuildTime(*plan, model, map.layout().disks()));
  }
  // Flat-or-falling: 4x the disks must not cost more than a small factor,
  // while the serial agent is exactly linear in the data it copies.
  EXPECT_LE(declustered[2], declustered[0] * 3 / 2);
  const sim::Duration serial_small =
      SerialAgentRebuildTime(per_disk_chunks * 100, model);
  const sim::Duration serial_large =
      SerialAgentRebuildTime(per_disk_chunks * 400, model);
  EXPECT_GT(serial_large, serial_small * 3);
  // And the declustered rebuild beats the serial agent outright at size.
  EXPECT_LT(declustered[2], serial_large);
}

TEST(Mttdl, OrderingAndParitySensitivity) {
  MttdlOptions options;
  options.total_disks = 1000;
  const double declustered =
      services::redundancy::MttdlDeclusteredHours(options);
  const double dedicated =
      services::redundancy::MttdlDedicatedHours(options);
  const double reattach = services::redundancy::MttdlReattachHours(options);
  // Any RS(8+3) scheme beats no-redundancy by orders of magnitude.
  EXPECT_GT(declustered, reattach * 1e3);
  EXPECT_GT(dedicated, reattach * 1e3);

  // Declustering trades worse failure-combination exposure (any m+1
  // overlapping failures in the unit, conservatively) for a far shorter
  // repair window, so it only wins with the MTTR its parallel rebuild
  // actually achieves: minutes (work spread over ~N/4 powered disks)
  // against the serial agent's day-scale copy of a full disk. Feed both
  // sides their model-backed repair times and the ordering must flip to
  // declustered.
  MttdlOptions fast = options;
  fast.repair_hours = 0.1;  // ~6 min, DeclusteredRebuildTime at N=1000
  MttdlOptions slow = options;
  slow.repair_hours = 24;   // serial agent + detection/dispatch
  EXPECT_GT(services::redundancy::MttdlDeclusteredHours(fast),
            services::redundancy::MttdlDedicatedHours(slow));

  // More parity, more lifetime.
  MttdlOptions m1 = options;
  m1.parity_chunks = 1;
  EXPECT_GT(declustered, services::redundancy::MttdlDeclusteredHours(m1));
}

TEST(FailureDomains, PrototypeWiringGroupsByLeafHub) {
  const fabric::BuiltFabric fabric =
      fabric::BuildPrototypeFabric(fabric::PrototypeOptions{});
  const fabric::FailureDomainMap domains =
      fabric::EnumerateFailureDomains(fabric);
  ASSERT_EQ(domains.size(), 4);
  std::set<std::string> seen;
  for (const fabric::FailureDomain& domain : domains.domains) {
    EXPECT_EQ(domain.disks.size(), 4u);
    for (const std::string& name : domain.disk_names) {
      EXPECT_TRUE(seen.insert(name).second) << name << " in two domains";
    }
  }
  EXPECT_EQ(seen.size(), fabric.disks.size());
}

}  // namespace
}  // namespace ustore
