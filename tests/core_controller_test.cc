// Controller unit tests: Algorithm 1 (SwitchesToTurn), command execution
// with verification, conflicts and rollback.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/controller.h"
#include "core/types.h"
#include "fabric/fabric_manager.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ustore::core {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : network_(&sim_, Rng(21)),
        manager_(&sim_, fabric::BuildPrototypeFabric(),
                 fabric::FabricManager::Options{}, Rng(22)),
        controller_(&sim_, &network_, "ctrl-0",
                    fabric::BuildPrototypeFabric(), &manager_, 0),
        requester_(&sim_, &network_, "requester") {
    // Feed the controller USB reports the way EndPoints would.
    report_timer_ = std::make_unique<sim::Timer>(&sim_);
    report_timer_->StartPeriodic(sim::MillisD(300), [this] {
      for (int h = 0; h < 4; ++h) {
        auto report = std::make_shared<UsbReportMsg>();
        report->host_index = h;
        report->report = manager_.host_stack(h)->TreeReport();
        requester_.Notify("ctrl-0", report);
      }
    });
    sim_.RunFor(sim::Seconds(5));  // initial enumeration + first reports
  }

  Status Schedule(std::vector<DiskHostPair> moves,
                  sim::Duration wait = sim::Seconds(40)) {
    auto request = std::make_shared<ScheduleRequest>();
    request->moves = std::move(moves);
    Status out = InternalError("pending");
    requester_.Call("ctrl-0", request, sim::Seconds(60),
                    [&](Result<net::MessagePtr> result) {
                      out = result.status();
                    });
    sim_.RunFor(wait);
    return out;
  }

  sim::Simulator sim_;
  net::Network network_;
  fabric::FabricManager manager_;
  Controller controller_;
  net::RpcEndpoint requester_;
  std::unique_ptr<sim::Timer> report_timer_;
};

TEST_F(ControllerTest, BelievedStateMatchesInitialFabric) {
  EXPECT_EQ(controller_.BelievedHostOfDisk("disk-0"), 0);
  EXPECT_EQ(controller_.BelievedHostOfDisk("disk-5"), 1);
  EXPECT_EQ(controller_.BelievedHostOfDisk("disk-15"), 3);
  EXPECT_EQ(controller_.BelievedHostOfDisk("nonexistent"), -1);
}

TEST_F(ControllerTest, SwitchesToTurnForGroupMove) {
  // Moving the whole group 0 to host 1 needs exactly one flip (swl-0).
  std::vector<DiskHostPair> moves;
  for (int d = 0; d < 4; ++d) {
    moves.push_back({"disk-" + std::to_string(d), 1});
  }
  auto plan = controller_.SwitchesToTurn(moves);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 1u);
}

TEST_F(ControllerTest, SwitchesToTurnNoOpWhenAlreadyThere) {
  auto plan = controller_.SwitchesToTurn({{"disk-0", 0}});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST_F(ControllerTest, SingleDiskMoveConflictsWithGroupMates) {
  // Algorithm 1: moving only disk-0 to host 1 requires flipping swl-0,
  // which carries disks 1-3 (not in the command) — a conflict.
  auto plan = controller_.SwitchesToTurn({{"disk-0", 1}});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kConflict);
}

TEST_F(ControllerTest, ExecutesGroupMoveAndVerifies) {
  std::vector<DiskHostPair> moves;
  for (int d = 0; d < 4; ++d) {
    moves.push_back({"disk-" + std::to_string(d), 1});
  }
  Status status = Schedule(moves);
  EXPECT_TRUE(status.ok()) << status;
  // Physical fabric and controller belief both updated.
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 1);
  EXPECT_EQ(controller_.BelievedHostOfDisk("disk-0"), 1);
  EXPECT_EQ(controller_.BelievedHostOfDisk("disk-3"), 1);
}

TEST_F(ControllerTest, MoveBackRestores) {
  std::vector<DiskHostPair> there, back;
  for (int d = 0; d < 4; ++d) {
    there.push_back({"disk-" + std::to_string(d), 1});
    back.push_back({"disk-" + std::to_string(d), 0});
  }
  ASSERT_TRUE(Schedule(there).ok());
  ASSERT_TRUE(Schedule(back).ok());
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
}

TEST_F(ControllerTest, ConflictingCommandRejectedWithoutChanges) {
  Status status = Schedule({{"disk-0", 1}}, sim::Seconds(5));
  EXPECT_EQ(status.code(), StatusCode::kConflict);
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);  // untouched
}

TEST_F(ControllerTest, CommandsAreSerializedThroughTheLock) {
  // Two commands queued back to back both execute, in order.
  std::vector<DiskHostPair> there, back;
  for (int d = 0; d < 4; ++d) {
    there.push_back({"disk-" + std::to_string(d), 1});
    back.push_back({"disk-" + std::to_string(d), 0});
  }
  Status first = InternalError("pending"), second = InternalError("pending");
  auto request1 = std::make_shared<ScheduleRequest>();
  request1->moves = there;
  auto request2 = std::make_shared<ScheduleRequest>();
  request2->moves = back;
  requester_.Call("ctrl-0", request1, sim::Seconds(90),
                  [&](Result<net::MessagePtr> r) { first = r.status(); });
  requester_.Call("ctrl-0", request2, sim::Seconds(90),
                  [&](Result<net::MessagePtr> r) { second = r.status(); });
  sim_.RunFor(sim::Seconds(80));
  EXPECT_TRUE(first.ok()) << first;
  EXPECT_TRUE(second.ok()) << second;
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
}

TEST_F(ControllerTest, VerificationTimeoutRollsBack) {
  // Crash the destination host: the disks switch over physically but its
  // (dead) OS never reports them, so verification must time out and the
  // controller must roll the switches back.
  manager_.CrashHost(1);
  std::vector<DiskHostPair> moves;
  for (int d = 0; d < 4; ++d) {
    moves.push_back({"disk-" + std::to_string(d), 1});
  }
  Status status = Schedule(moves, sim::Seconds(60));
  EXPECT_EQ(status.code(), StatusCode::kAborted);
  // Rolled back to host 0.
  sim_.RunFor(sim::Seconds(5));
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 0);
  EXPECT_EQ(controller_.BelievedHostOfDisk("disk-0"), 0);
}

TEST_F(ControllerTest, RelayPowerRequestCutsDiskPower) {
  auto request = std::make_shared<RelayPowerRequest>();
  request->device = "disk-7";
  request->on = false;
  Status status = InternalError("pending");
  requester_.Call("ctrl-0", request, sim::Seconds(5),
                  [&](Result<net::MessagePtr> r) { status = r.status(); });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(manager_.disk("disk-7")->state(), hw::DiskState::kPoweredOff);
}

TEST_F(ControllerTest, CrashedControllerIgnoresCommands) {
  controller_.Crash();
  Status status = Schedule({{"disk-0", 0}}, sim::Seconds(70));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ControllerTest, SecondControllerTakesOverViaXorBus) {
  // Build the backup controller on mcu 1; its board is unpowered until
  // takeover.
  Controller backup(&sim_, &network_, "ctrl-1",
                    fabric::BuildPrototypeFabric(), &manager_, 1);
  sim::Timer backup_reports(&sim_);
  backup_reports.StartPeriodic(sim::MillisD(300), [&] {
    for (int h = 0; h < 4; ++h) {
      auto report = std::make_shared<UsbReportMsg>();
      report->host_index = h;
      report->report = manager_.host_stack(h)->TreeReport();
      requester_.Notify("ctrl-1", report);
    }
  });

  controller_.Crash();
  Status takeover = InternalError("pending");
  requester_.Call("ctrl-1", std::make_shared<ControllerTakeoverRequest>(),
                  sim::Seconds(5),
                  [&](Result<net::MessagePtr> r) { takeover = r.status(); });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(takeover.ok());

  std::vector<DiskHostPair> moves;
  for (int d = 0; d < 4; ++d) {
    moves.push_back({"disk-" + std::to_string(d), 1});
  }
  auto request = std::make_shared<ScheduleRequest>();
  request->moves = moves;
  Status status = InternalError("pending");
  requester_.Call("ctrl-1", request, sim::Seconds(60),
                  [&](Result<net::MessagePtr> r) { status = r.status(); });
  sim_.RunFor(sim::Seconds(40));
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(manager_.VisibleHostOfDisk("disk-0"), 1);
}

}  // namespace
}  // namespace ustore::core
