// Property-style sweeps over fabric sizes and switch configurations:
// structural validity, reachability invariants, fault-tolerance claims and
// bandwidth-cap safety, parameterized over deploy-unit shapes.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fabric/bandwidth.h"
#include "fabric/builders.h"
#include "hw/disk_model.h"

namespace ustore::fabric {
namespace {

// --- Prototype-shape sweep ------------------------------------------------------

class PrototypeShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(PrototypeShapeTest, ValidatesAtEveryScale) {
  const int groups = GetParam();
  BuiltFabric f = BuildPrototypeFabric({.groups = groups});
  EXPECT_TRUE(f.topology.Validate(kDefaultHubFanIn).ok());
  EXPECT_EQ(f.disks.size(), static_cast<std::size_t>(groups * 4));
}

TEST_P(PrototypeShapeTest, EveryDiskAttachedExactlyOnceInAnyConfig) {
  // Under random switch settings, the active-attachment relation must be a
  // function: every disk reaches zero or one host ports, never more (a
  // valid partition of the fabric, §III-A).
  const int groups = GetParam();
  Rng rng(groups * 7919);
  for (int trial = 0; trial < 20; ++trial) {
    BuiltFabric f = BuildPrototypeFabric({.groups = groups});
    for (NodeIndex sw : f.switches) {
      f.topology.SetSwitch(sw, rng.NextBool(0.5));
    }
    for (NodeIndex disk : f.disks) {
      // AttachedHostPort is deterministic per config — call twice.
      EXPECT_EQ(f.topology.AttachedHostPort(disk),
                f.topology.AttachedHostPort(disk));
    }
    // No two disks' active paths may disagree about a shared switch —
    // trivially true since paths read global switch state; instead check
    // tree-ness: each node has at most one active parent by construction,
    // so any reached host port set sizes sum consistently.
    std::set<NodeIndex> reached;
    for (NodeIndex disk : f.disks) {
      const NodeIndex port = f.topology.AttachedHostPort(disk);
      if (port != kInvalidNode) reached.insert(port);
    }
    EXPECT_LE(reached.size(), f.host_ports.size());
  }
}

TEST_P(PrototypeShapeTest, HostFailureToleratedAtEveryScale) {
  const int groups = GetParam();
  for (int dead = 0; dead < groups; ++dead) {
    BuiltFabric f = BuildPrototypeFabric({.groups = groups});
    for (NodeIndex port : f.PortsOfHost(dead)) {
      f.topology.SetFailed(port, true);
    }
    for (NodeIndex disk : f.disks) {
      EXPECT_FALSE(f.topology.ReachableHostPorts(disk).empty())
          << "groups=" << groups << " dead host=" << dead;
    }
  }
}

TEST_P(PrototypeShapeTest, GroupMoveIsAlwaysConflictFreeToNeighbour) {
  // Moving a whole group to the next host in the ring must never require
  // flipping a switch on another group's path.
  const int groups = GetParam();
  BuiltFabric f = BuildPrototypeFabric({.groups = groups});
  for (int g = 0; g < groups; ++g) {
    const int target = (g + 1) % groups;
    // Flip this group's leaf switch and check only its own disks moved.
    auto swl = f.topology.Find("swl-" + std::to_string(g));
    ASSERT_TRUE(swl.ok());
    f.topology.SetSwitch(*swl, true);
    for (NodeIndex disk : f.disks) {
      const int host = f.HostOfDisk(disk);
      const int disk_index = disk;  // not meaningful; use name
      (void)disk_index;
      const std::string& name = f.topology.node(disk).name;
      const int disk_group = std::stoi(name.substr(5)) / 4;
      if (disk_group == g) {
        EXPECT_EQ(host, target) << name;
      } else {
        EXPECT_EQ(host, disk_group) << name;
      }
    }
    f.topology.SetSwitch(*swl, false);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, PrototypeShapeTest,
                         ::testing::Values(2, 3, 4, 6, 8, 16));

// --- Leaf-switched sweep -----------------------------------------------------------

class LeafSwitchedShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(LeafSwitchedShapeTest, ValidatesAndBalances) {
  const int disks = GetParam();
  BuiltFabric f = BuildLeafSwitchedFabric({.disks = disks});
  EXPECT_TRUE(f.topology.Validate(kDefaultHubFanIn).ok());
  // Every disk independently reaches both hosts.
  for (NodeIndex disk : f.disks) {
    EXPECT_EQ(f.topology.ReachableHostPorts(disk).size(), 2u);
  }
  // Arbitrary subsets can be split across hosts.
  Rng rng(disks);
  int on_b = 0;
  for (int d = 0; d < disks; ++d) {
    if (rng.NextBool(0.5)) {
      auto sw = f.topology.Find("swd-" + std::to_string(d));
      ASSERT_TRUE(sw.ok());
      f.topology.SetSwitch(*sw, true);
      ++on_b;
    }
  }
  EXPECT_EQ(f.DisksAttachedToHost(1).size(), static_cast<std::size_t>(on_b));
  EXPECT_EQ(f.DisksAttachedToHost(0).size(),
            static_cast<std::size_t>(disks - on_b));
}

TEST_P(LeafSwitchedShapeTest, TierDepthWithinUsbLimit) {
  const int disks = GetParam();
  BuiltFabric f = BuildLeafSwitchedFabric({.disks = disks});
  for (NodeIndex disk : f.disks) {
    EXPECT_LE(f.topology.TierOf(disk), 5) << "USB tier limit";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LeafSwitchedShapeTest,
                         ::testing::Values(1, 4, 16, 48, 64));

// --- Bandwidth-cap safety ------------------------------------------------------------

struct CapCase {
  int disks;
  double read_fraction;
  Bytes request_size;
  hw::AccessPattern pattern;
};

class BandwidthCapTest : public ::testing::TestWithParam<CapCase> {};

TEST_P(BandwidthCapTest, AllocationNeverViolatesAnyCap) {
  const CapCase& c = GetParam();
  BuiltFabric f = BuildSingleHostTree({.disks = c.disks});
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  hw::WorkloadSpec spec{c.request_size, c.read_fraction, c.pattern};
  std::vector<FlowDemand> demands;
  for (int i = 0; i < c.disks; ++i) {
    demands.push_back(FlowDemand{f.disks[i],
                                 model.Evaluate(spec).bytes_per_sec,
                                 c.read_fraction, c.request_size});
  }
  const hw::UsbHostControllerParams host;
  auto result = SolveMaxMinFair(f, demands, host, hw::UsbLinkParams{});

  const double tolerance = 1.0 + 1e-6;
  EXPECT_LE(result.total_read, host.root_link.cap_per_direction * tolerance);
  EXPECT_LE(result.total_write,
            host.root_link.cap_per_direction * tolerance);
  EXPECT_LE(result.total, host.root_link.cap_duplex_total * tolerance);
  double iops = 0;
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    iops += result.flows[i].rate / static_cast<double>(c.request_size);
    EXPECT_LE(result.flows[i].rate, demands[i].demand * tolerance);
    EXPECT_GE(result.flows[i].rate, 0.0);
  }
  EXPECT_LE(iops, host.transaction_cap * tolerance);

  // Max-min fairness for identical demands: all attached flows equal.
  for (std::size_t i = 1; i < result.flows.size(); ++i) {
    EXPECT_NEAR(result.flows[i].rate, result.flows[0].rate,
                result.flows[0].rate * 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BandwidthCapTest,
    ::testing::Values(CapCase{1, 1.0, KiB(4), hw::AccessPattern::kSequential},
                      CapCase{4, 0.5, KiB(4), hw::AccessPattern::kSequential},
                      CapCase{8, 1.0, KiB(4), hw::AccessPattern::kSequential},
                      CapCase{12, 0.0, KiB(4), hw::AccessPattern::kSequential},
                      CapCase{12, 1.0, KiB(4), hw::AccessPattern::kRandom},
                      CapCase{2, 1.0, MiB(4), hw::AccessPattern::kSequential},
                      CapCase{8, 0.5, MiB(4), hw::AccessPattern::kSequential},
                      CapCase{12, 0.0, MiB(4), hw::AccessPattern::kRandom},
                      CapCase{16, 0.5, MiB(1), hw::AccessPattern::kRandom},
                      CapCase{48, 1.0, KiB(64),
                              hw::AccessPattern::kSequential}));

TEST(BandwidthMonotonicityTest, MoreDisksNeverLessTotal) {
  const hw::DiskModel model(hw::DiskParams{}, hw::UsbBridgeInterface());
  for (double rf : {1.0, 0.5}) {
    hw::WorkloadSpec spec{MiB(4), rf, hw::AccessPattern::kSequential};
    double prev = 0;
    for (int n = 1; n <= 16; ++n) {
      BuiltFabric f = BuildSingleHostTree({.disks = n});
      std::vector<FlowDemand> demands;
      for (int i = 0; i < n; ++i) {
        demands.push_back(FlowDemand{f.disks[i],
                                     model.Evaluate(spec).bytes_per_sec, rf,
                                     MiB(4)});
      }
      auto result = SolveMaxMinFair(f, demands,
                                    hw::UsbHostControllerParams{},
                                    hw::UsbLinkParams{});
      EXPECT_GE(result.total, prev - 1.0) << n << " disks, rf=" << rf;
      prev = result.total;
    }
  }
}

}  // namespace
}  // namespace ustore::fabric
