#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consensus/paxos.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ustore::consensus {
namespace {

class PaxosGroup {
 public:
  PaxosGroup(sim::Simulator* sim, net::Network* network, int n,
             std::uint64_t seed = 1) {
    PaxosConfig config;
    for (int i = 0; i < n; ++i) {
      config.peers.push_back("paxos-" + std::to_string(i));
    }
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      applied_.emplace_back();
      nodes_.push_back(std::make_unique<PaxosNode>(
          sim, network, config, i,
          [this, i](std::uint64_t index, const std::string& command) {
            applied_[i].emplace_back(index, command);
          },
          rng.Fork()));
    }
  }

  PaxosNode* node(int i) { return nodes_[i].get(); }
  int size() const { return static_cast<int>(nodes_.size()); }

  int LeaderIndex() const {
    for (int i = 0; i < size(); ++i) {
      if (!nodes_[i]->stopped() && nodes_[i]->is_leader()) return i;
    }
    return -1;
  }

  int LeaderCount() const {
    int count = 0;
    for (const auto& node : nodes_) {
      if (!node->stopped() && node->is_leader()) ++count;
    }
    return count;
  }

  // Applied command (excluding no-ops) sequences must be prefix-consistent.
  void CheckConsistency() const {
    for (int a = 0; a < size(); ++a) {
      for (int b = a + 1; b < size(); ++b) {
        const auto& log_a = applied_[a];
        const auto& log_b = applied_[b];
        // Compare by index: same index => same command.
        std::map<std::uint64_t, std::string> map_b(log_b.begin(),
                                                   log_b.end());
        for (const auto& [index, command] : log_a) {
          auto it = map_b.find(index);
          if (it != map_b.end()) {
            ASSERT_EQ(command, it->second)
                << "divergence at index " << index << " between nodes " << a
                << " and " << b;
          }
        }
      }
    }
  }

  std::vector<std::string> CommandsApplied(int i) const {
    std::vector<std::string> out;
    for (const auto& [index, command] : applied_[i]) {
      if (command != kNoOpCommand) out.push_back(command);
    }
    return out;
  }

 private:
  std::vector<std::unique_ptr<PaxosNode>> nodes_;
  std::vector<std::vector<std::pair<std::uint64_t, std::string>>> applied_;
};

class PaxosTest : public ::testing::Test {
 protected:
  PaxosTest() : network_(&sim_, Rng(99)) {}
  sim::Simulator sim_;
  net::Network network_;
};

TEST_F(PaxosTest, ElectsExactlyOneLeader) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  EXPECT_EQ(group.LeaderCount(), 1);
}

TEST_F(PaxosTest, SingleNodeGroupWorks) {
  PaxosGroup group(&sim_, &network_, 1);
  sim_.RunFor(sim::Seconds(2));
  ASSERT_TRUE(group.node(0)->is_leader());
  bool committed = false;
  group.node(0)->Propose("cmd", [&](Result<std::uint64_t> r) {
    EXPECT_TRUE(r.ok());
    committed = true;
  });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_TRUE(committed);
  EXPECT_EQ(group.CommandsApplied(0), std::vector<std::string>{"cmd"});
}

TEST_F(PaxosTest, CommitsReplicateToAllNodes) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  const int leader = group.LeaderIndex();
  ASSERT_GE(leader, 0);

  for (int i = 0; i < 5; ++i) {
    group.node(leader)->Propose("cmd-" + std::to_string(i),
                                [](Result<std::uint64_t>) {});
  }
  sim_.RunFor(sim::Seconds(3));
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(group.CommandsApplied(n).size(), 5u) << "node " << n;
  }
  group.CheckConsistency();
}

TEST_F(PaxosTest, NonLeaderRejectsProposals) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  const int leader = group.LeaderIndex();
  const int follower = (leader + 1) % 3;
  Status status;
  group.node(follower)->Propose(
      "nope", [&](Result<std::uint64_t> r) { status = r.status(); });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("hint"), std::string::npos);
}

TEST_F(PaxosTest, LeaderCrashElectsNewLeaderAndPreservesLog) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  const int old_leader = group.LeaderIndex();
  ASSERT_GE(old_leader, 0);
  for (int i = 0; i < 3; ++i) {
    group.node(old_leader)->Propose("before-" + std::to_string(i),
                                    [](Result<std::uint64_t>) {});
  }
  sim_.RunFor(sim::Seconds(2));

  group.node(old_leader)->Stop();
  sim_.RunFor(sim::Seconds(5));
  const int new_leader = group.LeaderIndex();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, old_leader);

  for (int i = 0; i < 3; ++i) {
    group.node(new_leader)->Propose("after-" + std::to_string(i),
                                    [](Result<std::uint64_t>) {});
  }
  sim_.RunFor(sim::Seconds(3));

  const auto commands = group.CommandsApplied(new_leader);
  EXPECT_EQ(commands.size(), 6u);
  group.CheckConsistency();
}

TEST_F(PaxosTest, RestartedNodeCatchesUp) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  const int leader = group.LeaderIndex();
  const int victim = (leader + 1) % 3;
  group.node(victim)->Stop();

  for (int i = 0; i < 10; ++i) {
    group.node(leader)->Propose("cmd-" + std::to_string(i),
                                [](Result<std::uint64_t>) {});
  }
  sim_.RunFor(sim::Seconds(3));

  group.node(victim)->Restart();
  sim_.RunFor(sim::Seconds(5));
  EXPECT_EQ(group.CommandsApplied(victim).size(), 10u);
  group.CheckConsistency();
}

TEST_F(PaxosTest, MinorityCrashDoesNotBlockProgress) {
  PaxosGroup group(&sim_, &network_, 5);
  sim_.RunFor(sim::Seconds(3));
  int leader = group.LeaderIndex();
  ASSERT_GE(leader, 0);
  // Crash two non-leaders.
  int crashed = 0;
  for (int i = 0; i < 5 && crashed < 2; ++i) {
    if (i != leader) {
      group.node(i)->Stop();
      ++crashed;
    }
  }
  int committed = 0;
  for (int i = 0; i < 4; ++i) {
    group.node(leader)->Propose(
        "cmd-" + std::to_string(i),
        [&](Result<std::uint64_t> r) { committed += r.ok() ? 1 : 0; });
  }
  sim_.RunFor(sim::Seconds(3));
  EXPECT_EQ(committed, 4);
}

TEST_F(PaxosTest, MajorityCrashBlocksCommits) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  const int leader = group.LeaderIndex();
  for (int i = 0; i < 3; ++i) {
    if (i != leader) group.node(i)->Stop();
  }
  bool fired = false;
  group.node(leader)->Propose("stuck",
                              [&](Result<std::uint64_t>) { fired = true; });
  sim_.RunFor(sim::Seconds(5));
  EXPECT_FALSE(fired);  // cannot commit without a majority
}

TEST_F(PaxosTest, SurvivesLossyNetwork) {
  // 20% message loss: consensus still makes progress, logs stay consistent.
  net::LinkParams lossy;
  lossy.loss_probability = 0.2;
  network_.set_default_link(lossy);

  PaxosGroup group(&sim_, &network_, 3, /*seed=*/7);
  sim_.RunFor(sim::Seconds(5));

  // Proposals are pumped at whoever currently leads.
  int committed = 0;
  for (int round = 0; round < 20; ++round) {
    sim_.RunFor(sim::Seconds(1));
    const int leader = group.LeaderIndex();
    if (leader < 0) continue;
    group.node(leader)->Propose(
        "cmd-" + std::to_string(round),
        [&](Result<std::uint64_t> r) { committed += r.ok() ? 1 : 0; });
  }
  sim_.RunFor(sim::Seconds(10));
  EXPECT_GT(committed, 10);
  group.CheckConsistency();
}

TEST_F(PaxosTest, PartitionedLeaderStepsDownAndRejoins) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  const int old_leader = group.LeaderIndex();
  ASSERT_GE(old_leader, 0);

  // Isolate the leader from both peers.
  for (int i = 0; i < 3; ++i) {
    if (i != old_leader) {
      network_.SetPartitioned("paxos-" + std::to_string(old_leader),
                              "paxos-" + std::to_string(i), true);
    }
  }
  sim_.RunFor(sim::Seconds(5));
  // The majority side elected a new leader.
  int majority_leader = -1;
  for (int i = 0; i < 3; ++i) {
    if (i != old_leader && group.node(i)->is_leader()) majority_leader = i;
  }
  ASSERT_GE(majority_leader, 0);

  for (int i = 0; i < 3; ++i) {
    group.node(majority_leader)->Propose("during-" + std::to_string(i),
                                         [](Result<std::uint64_t>) {});
  }
  sim_.RunFor(sim::Seconds(2));

  // Heal: the old leader must adopt the new history.
  for (int i = 0; i < 3; ++i) {
    if (i != old_leader) {
      network_.SetPartitioned("paxos-" + std::to_string(old_leader),
                              "paxos-" + std::to_string(i), false);
    }
  }
  sim_.RunFor(sim::Seconds(5));
  group.CheckConsistency();
  EXPECT_EQ(group.LeaderCount(), 1);
  EXPECT_EQ(group.CommandsApplied(old_leader).size(), 3u);
}

TEST_F(PaxosTest, ConcurrentProposalsAllCommitInSomeOrder) {
  PaxosGroup group(&sim_, &network_, 3);
  sim_.RunFor(sim::Seconds(3));
  const int leader = group.LeaderIndex();
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    group.node(leader)->Propose(
        "c" + std::to_string(i),
        [&](Result<std::uint64_t> r) { committed += r.ok() ? 1 : 0; });
  }
  sim_.RunFor(sim::Seconds(5));
  EXPECT_EQ(committed, 20);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(group.CommandsApplied(n).size(), 20u);
  }
  group.CheckConsistency();
}

}  // namespace
}  // namespace ustore::consensus
