#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.h"
#include "hw/disk.h"
#include "iscsi/iscsi.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ustore::iscsi {
namespace {

class IscsiTest : public ::testing::Test {
 protected:
  IscsiTest()
      : network_(&sim_, Rng(3)),
        host_endpoint_(&sim_, &network_, "host-0"),
        client_endpoint_(&sim_, &network_, "client-0"),
        disk_(&sim_, "disk-0",
              hw::DiskModel(hw::DiskParams{}, hw::UsbBridgeInterface())),
        target_(&sim_, &host_endpoint_,
                [this](const std::string& name) -> hw::Disk* {
                  if (name == "disk-0" && disk_visible_) return &disk_;
                  return nullptr;
                }),
        initiator_(&sim_, &client_endpoint_) {}

  Status ExposeSync(const LunSpec& spec) {
    Status out = InternalError("pending");
    target_.Expose(spec, [&](Status s) { out = s; });
    sim_.RunFor(sim::Seconds(3));
    return out;
  }

  Result<Bytes> ConnectSync(const std::string& lun_id) {
    Result<Bytes> out = InternalError("pending");
    initiator_.Connect("host-0", lun_id, [&](Result<Bytes> r) { out = r; });
    sim_.RunFor(sim::Seconds(1));
    return out;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::RpcEndpoint host_endpoint_;
  net::RpcEndpoint client_endpoint_;
  hw::Disk disk_;
  bool disk_visible_ = true;
  IscsiTarget target_;
  IscsiInitiator initiator_;
};

TEST_F(IscsiTest, ExposeTakesSetupDelay) {
  Status out = InternalError("pending");
  target_.Expose({"/u0/disk-0/1", "disk-0", 0, GiB(10)},
                 [&](Status s) { out = s; });
  sim_.RunFor(sim::MillisD(500));
  EXPECT_FALSE(target_.IsExposed("/u0/disk-0/1"));  // still setting up
  sim_.RunFor(sim::Seconds(1));
  EXPECT_TRUE(out.ok());
  EXPECT_TRUE(target_.IsExposed("/u0/disk-0/1"));
}

TEST_F(IscsiTest, ExposeFailsWhenDiskNotRecognized) {
  disk_visible_ = false;
  Status out = ExposeSync({"/u0/disk-0/1", "disk-0", 0, GiB(10)});
  EXPECT_EQ(out.code(), StatusCode::kUnavailable);
}

TEST_F(IscsiTest, ExposeFailsIfDiskVanishesDuringSetup) {
  Status out = InternalError("pending");
  target_.Expose({"/u0/disk-0/1", "disk-0", 0, GiB(10)},
                 [&](Status s) { out = s; });
  sim_.RunFor(sim::MillisD(500));
  disk_visible_ = false;  // switched away mid-setup
  sim_.RunFor(sim::Seconds(2));
  EXPECT_EQ(out.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(target_.IsExposed("/u0/disk-0/1"));
}

TEST_F(IscsiTest, DuplicateExposeRejected) {
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).ok());
  EXPECT_EQ(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(IscsiTest, LoginReturnsCapacity) {
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(10)}).ok());
  auto capacity = ConnectSync("/lun");
  ASSERT_TRUE(capacity.ok());
  EXPECT_EQ(*capacity, GiB(10));
  EXPECT_TRUE(initiator_.connected());
}

TEST_F(IscsiTest, LoginToUnknownLunFails) {
  auto result = ConnectSync("/ghost");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(initiator_.connected());
}

TEST_F(IscsiTest, WriteReadRoundTripPreservesTag) {
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(10)}).ok());
  ASSERT_TRUE(ConnectSync("/lun").ok());

  Status write_status = InternalError("pending");
  initiator_.Write(MiB(1), KiB(4), false, 0xDEADBEEF,
                   [&](Status s) { write_status = s; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(write_status.ok());

  Result<std::uint64_t> tag = InternalError("pending");
  initiator_.Read(MiB(1), KiB(4), false,
                  [&](Result<std::uint64_t> r) { tag = r; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, 0xDEADBEEFu);
}

TEST_F(IscsiTest, LunOffsetIsolatesExtents) {
  // Two LUNs on the same disk at different offsets must not alias.
  ASSERT_TRUE(ExposeSync({"/lun-a", "disk-0", 0, GiB(1)}).ok());
  ASSERT_TRUE(ExposeSync({"/lun-b", "disk-0", GiB(1), GiB(1)}).ok());

  IscsiInitiator second(&sim_, &client_endpoint_);
  ASSERT_TRUE(ConnectSync("/lun-a").ok());
  Result<Bytes> second_capacity = InternalError("pending");
  second.Connect("host-0", "/lun-b",
                 [&](Result<Bytes> r) { second_capacity = r; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(second_capacity.ok());

  Status status = InternalError("pending");
  initiator_.Write(0, KiB(4), false, 111, [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(status.ok());
  second.Write(0, KiB(4), false, 222, [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(status.ok());

  Result<std::uint64_t> tag = InternalError("pending");
  initiator_.Read(0, KiB(4), false,
                  [&](Result<std::uint64_t> r) { tag = r; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, 111u);
  second.Read(0, KiB(4), false, [&](Result<std::uint64_t> r) { tag = r; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, 222u);
}

TEST_F(IscsiTest, IoOutsideExtentRejected) {
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, MiB(1)}).ok());
  ASSERT_TRUE(ConnectSync("/lun").ok());
  Status status;
  initiator_.Write(MiB(1) - KiB(2), KiB(4), false, 1,
                   [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(IscsiTest, IoFailsWhenDiskMovesAway) {
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).ok());
  ASSERT_TRUE(ConnectSync("/lun").ok());
  disk_visible_ = false;  // reconfigured to another host
  Status status = InternalError("pending");
  initiator_.Write(0, KiB(4), false, 1, [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(IscsiTest, UnexposeStopsServingIo) {
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).ok());
  ASSERT_TRUE(ConnectSync("/lun").ok());
  ASSERT_TRUE(target_.Unexpose("/lun").ok());
  Status status = InternalError("pending");
  initiator_.Read(0, KiB(4), false,
                  [&](Result<std::uint64_t> r) { status = r.status(); });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(target_.Unexpose("/lun").code(), StatusCode::kNotFound);
}

TEST_F(IscsiTest, PingDetectsDeadHostAndDisconnects) {
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).ok());
  ASSERT_TRUE(ConnectSync("/lun").ok());
  Status lost;
  initiator_.set_connection_lost_listener([&](Status s) { lost = s; });
  network_.SetNodeDown("host-0", true);
  sim_.RunFor(sim::Seconds(5));
  EXPECT_EQ(lost.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(initiator_.connected());
  // I/O after disconnection fails fast.
  Status status = InternalError("pending");
  initiator_.Read(0, KiB(4), false,
                  [&](Result<std::uint64_t> r) { status = r.status(); });
  sim_.RunFor(sim::Seconds(1));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(IscsiTest, PingsSurviveSlowCommands) {
  // A command held by disk spin-up must not kill the session.
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).ok());
  ASSERT_TRUE(ConnectSync("/lun").ok());
  disk_.SpinDown();
  bool lost = false;
  initiator_.set_connection_lost_listener([&](Status) { lost = true; });
  Status status = InternalError("pending");
  initiator_.Write(0, KiB(4), false, 1, [&](Status s) { status = s; });
  sim_.RunFor(sim::Seconds(15));  // spin-up takes ~7 s
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_FALSE(lost);
}

TEST_F(IscsiTest, LargeTransfersPayNetworkTime) {
  // A 4 MiB read must take at least the 1 GbE serialization time (~35 ms)
  // on top of the disk service time.
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).ok());
  ASSERT_TRUE(ConnectSync("/lun").ok());
  const sim::Time start = sim_.now();
  sim::Time done_at = 0;
  initiator_.Read(0, MiB(4), false, [&](Result<std::uint64_t> r) {
    ASSERT_TRUE(r.ok());
    done_at = sim_.now();
  });
  sim_.RunFor(sim::Seconds(2));
  ASSERT_GT(done_at, start);
  const double ms = sim::ToMillis(done_at - start);
  EXPECT_GT(ms, 22.0 + 30.0);  // disk transfer + network serialization
  EXPECT_LT(ms, 120.0);
}

TEST_F(IscsiTest, TargetFlapDuringPingDoesNotPoisonTheNewSession) {
  // A NOP ping can outlive its session: issue one that will time out,
  // then disconnect + reconnect (a target flap) while it is in flight.
  // The stale timeout must be dropped on the session-generation check —
  // with ping_failures_to_disconnect=1 it would otherwise tear down the
  // healthy new session the moment it lands.
  ASSERT_TRUE(ExposeSync({"/lun", "disk-0", 0, GiB(1)}).ok());
  net::RpcEndpoint endpoint(&sim_, &network_, "client-1");
  IscsiInitiatorOptions options;
  options.ping_failures_to_disconnect = 1;
  IscsiInitiator initiator(&sim_, &endpoint, options);
  bool lost = false;
  initiator.set_connection_lost_listener([&](Status) { lost = true; });

  Result<Bytes> connected = InternalError("pending");
  initiator.Connect("host-0", "/lun", [&](Result<Bytes> r) { connected = r; });
  sim_.RunFor(sim::Seconds(1));
  ASSERT_TRUE(connected.ok()) << connected.status();
  const std::uint64_t first_session = initiator.session_generation();

  // Drop the path so the next periodic NOP times out, and let one launch.
  network_.SetPartitioned("host-0", "client-1", true);
  sim_.RunFor(sim::MillisD(600));

  // Flap while that NOP is still in flight.
  initiator.Disconnect();
  network_.SetPartitioned("host-0", "client-1", false);
  connected = InternalError("pending");
  initiator.Connect("host-0", "/lun", [&](Result<Bytes> r) { connected = r; });
  sim_.RunFor(sim::MillisD(200));
  ASSERT_TRUE(connected.ok()) << connected.status();
  EXPECT_EQ(initiator.session_generation(), first_session + 2);

  // The stale ping's timeout lands here; the new session must ride it out.
  sim_.RunFor(sim::Seconds(2));
  EXPECT_TRUE(initiator.connected());
  EXPECT_FALSE(lost);
  EXPECT_EQ(initiator.ping_failures(), 0);
}

}  // namespace
}  // namespace ustore::iscsi
