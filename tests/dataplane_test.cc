// Data-plane fast-path tests (DESIGN.md §9).
//
// The load-bearing property is *timing equivalence*: batched NCQ admission
// and closed-form steady-state fast-forward are pure event-count
// optimizations, so per-request completion timestamps — and the metric
// trail the disk leaves behind — must be bit-identical to one-at-a-time
// submission. The randomized test here enforces that over mixed request
// shapes and arbitrary serial/batched interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "hw/disk.h"
#include "hw/disk_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace ustore {
namespace {

using hw::AccessPattern;
using hw::Disk;
using hw::DiskModel;
using hw::DiskParams;
using hw::DiskQueueOptions;
using hw::IoCompletion;
using hw::IoDirection;
using hw::IoRequest;

IoRequest RandomRequest(std::mt19937& rng) {
  static const Bytes kSizes[] = {KiB(4), KiB(128), MiB(1), MiB(4)};
  IoRequest req;
  req.size = kSizes[rng() % 4];
  req.direction = rng() % 2 == 0 ? IoDirection::kRead : IoDirection::kWrite;
  req.pattern =
      rng() % 2 == 0 ? AccessPattern::kSequential : AccessPattern::kRandom;
  return req;
}

struct RunOutcome {
  std::vector<sim::Time> completed_at;
  obs::MetricsSnapshot metrics;
  std::vector<obs::TraceSpan> spans;
};

// Submits `requests` to a fresh disk on a fresh simulator, partitioned into
// runs by `plan`: plan[i] > 0 submits the next plan[i] requests as one
// batch, plan[i] < 0 submits the next -plan[i] one at a time. An empty
// plan means all-serial (the timing baseline).
RunOutcome RunPlan(const std::vector<IoRequest>& requests,
               const std::vector<int>& plan) {
  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace(1 << 14);
  obs::ScopedObsBinding binding(&metrics, &trace);
  sim::Simulator sim;
  obs::BindSimulator(&sim);
  {
    Disk disk(&sim, "eq", DiskModel(DiskParams{}, hw::UsbBridgeInterface()));
    RunOutcome out;
    out.completed_at.assign(requests.size(), -1);

    std::size_t next = 0;
    auto submit_serial = [&](std::size_t count) {
      for (std::size_t i = 0; i < count; ++i, ++next) {
        const std::size_t slot = next;
        disk.SubmitIo(requests[slot], [&, slot](Status status) {
          EXPECT_TRUE(status.ok()) << status.ToString();
          out.completed_at[slot] = sim.now();
        });
      }
    };
    auto submit_batch = [&](std::size_t count) {
      const std::size_t base = next;
      disk.SubmitBatch(
          std::span<const IoRequest>(&requests[base], count),
          [&, base](std::span<const IoCompletion> completions) {
            for (std::size_t j = 0; j < completions.size(); ++j) {
              EXPECT_TRUE(completions[j].status.ok())
                  << completions[j].status.ToString();
              out.completed_at[base + j] = completions[j].completed_at;
            }
          });
      next += count;
    };
    if (plan.empty()) {
      submit_serial(requests.size());
    } else {
      for (int run : plan) {
        run > 0 ? submit_batch(static_cast<std::size_t>(run))
                : submit_serial(static_cast<std::size_t>(-run));
      }
    }
    EXPECT_EQ(next, requests.size());
    sim.Run();
    out.metrics = obs::Metrics().Snapshot();
    out.spans = trace.CompletedInOrder();
    obs::BindSimulator(nullptr);
    return out;
  }
}

// The per-op `io` spans of a run, flattened into comparable keys: the
// component, timestamps and full attribute list — everything except the
// span/parent ids, which legitimately differ between serial roots and
// batch children.
std::vector<std::string> IoSpanKeys(const std::vector<obs::TraceSpan>& spans) {
  std::vector<std::string> keys;
  for (const obs::TraceSpan& span : spans) {
    if (span.name != "io") continue;
    std::string key = span.component + "|" + std::to_string(span.start) +
                      ".." + std::to_string(span.end);
    for (const auto& [k, v] : span.attrs) key += "|" + k + "=" + v;
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ExpectSameHistogram(const obs::MetricsSnapshot& a,
                         const obs::MetricsSnapshot& b,
                         const std::string& name) {
  auto ia = a.histograms.find(name);
  auto ib = b.histograms.find(name);
  ASSERT_NE(ia, a.histograms.end()) << name;
  ASSERT_NE(ib, b.histograms.end()) << name;
  EXPECT_EQ(ia->second.count, ib->second.count) << name;
  EXPECT_EQ(ia->second.sum, ib->second.sum) << name;
  EXPECT_EQ(ia->second.min, ib->second.min) << name;
  EXPECT_EQ(ia->second.max, ib->second.max) << name;
  EXPECT_EQ(ia->second.bucket_counts, ib->second.bucket_counts) << name;
}

TEST(DataPlaneEquivalence, BatchedCompletionTimesMatchSerialBitForBit) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed);

    std::vector<IoRequest> requests(60);
    for (IoRequest& req : requests) req = RandomRequest(rng);

    // Partition into random serial/batched runs. Batches of up to 40
    // exercise the max_batch=32 window split as well.
    std::vector<int> plan;
    for (std::size_t left = requests.size(); left > 0;) {
      std::size_t run = 1 + rng() % std::min<std::size_t>(left, 40);
      plan.push_back(rng() % 2 == 0 ? static_cast<int>(run)
                                    : -static_cast<int>(run));
      left -= run;
    }

    const RunOutcome serial = RunPlan(requests, {});
    const RunOutcome mixed = RunPlan(requests, plan);

    // The tentpole assertion: identical per-request completion timestamps.
    EXPECT_EQ(serial.completed_at, mixed.completed_at);

    // Identical observable metric trail: every counter (including the
    // DiskModel evaluation counters), the state gauge with its full sample
    // trail, and the per-op service-time histogram. Only the
    // admission-shape histograms (disk.queue.depth, disk.batch.size) may
    // differ — they describe *how* requests were handed over, which is
    // exactly what batching changes.
    EXPECT_EQ(serial.metrics.counters, mixed.metrics.counters);
    ASSERT_EQ(serial.metrics.gauges.size(), mixed.metrics.gauges.size());
    for (const auto& [name, gauge] : serial.metrics.gauges) {
      auto it = mixed.metrics.gauges.find(name);
      ASSERT_NE(it, mixed.metrics.gauges.end()) << name;
      EXPECT_EQ(gauge.value, it->second.value) << name;
      ASSERT_EQ(gauge.samples.size(), it->second.samples.size()) << name;
      for (std::size_t i = 0; i < gauge.samples.size(); ++i) {
        EXPECT_EQ(gauge.samples[i].at, it->second.samples[i].at) << name;
        EXPECT_EQ(gauge.samples[i].value, it->second.samples[i].value)
            << name;
      }
    }
    ExpectSameHistogram(serial.metrics, mixed.metrics,
                        "disk.op.service_time_us");

    // Batching must not delete per-op trace observability either: every
    // request leaves one `io` span with the same component, platter
    // interval and attributes (dir/size/service_ns) as the serial run —
    // only the span ids and the parent edge (batch members hang under an
    // `io_batch` span) may differ.
    EXPECT_EQ(IoSpanKeys(serial.spans), IoSpanKeys(mixed.spans));
    std::set<obs::SpanId> batch_spans;
    for (const obs::TraceSpan& span : mixed.spans) {
      if (span.name == "io_batch") batch_spans.insert(span.id);
    }
    for (const obs::TraceSpan& span : serial.spans) {
      EXPECT_NE(span.name, "io_batch");
      if (span.name == "io") {
        EXPECT_EQ(span.parent, obs::kInvalidSpan);  // serial ops are roots
        EXPECT_EQ(span.trace_id, span.id);
      }
    }
    for (const obs::TraceSpan& span : mixed.spans) {
      if (span.name != "io" || span.parent == obs::kInvalidSpan) continue;
      // A batch member's parent is its batch's span, and it inherits the
      // batch's tree id.
      EXPECT_TRUE(batch_spans.count(span.parent) > 0)
          << "io span parented under a non-batch span";
      EXPECT_EQ(span.trace_id, span.parent);
    }
  }
}

// The six client.read.phase.*_us histograms are an exact partition of
// client.read.latency_us — including for a cold read that pays a full
// platter spin-up.
TEST(DataPlaneEndToEnd, PhaseHistogramsPartitionEndToEndLatency) {
  obs::Metrics().Clear();
  core::Cluster cluster;
  cluster.Start();
  auto client = cluster.MakeClient("phase-client");
  core::ClientLib::Volume* volume = nullptr;
  client->AllocateAndMount("phase-svc", GiB(2),
                           [&](Result<core::ClientLib::Volume*> result) {
                             ASSERT_TRUE(result.ok()) << result.status();
                             volume = *result;
                           });
  cluster.RunFor(sim::Seconds(10));
  ASSERT_NE(volume, nullptr);

  bool wrote = false;
  volume->Write(0, MiB(1), false, 0xCAFE, [&](Status status) {
    ASSERT_TRUE(status.ok()) << status.ToString();
    wrote = true;
  });
  cluster.RunFor(sim::Seconds(5));
  ASSERT_TRUE(wrote);

  // Warm read, then spin the platter down and read again: the cold read's
  // e2e includes the ~7.5 s spin-up, which must land in the spin_up phase
  // (not inflate rpc or queue_wait).
  int reads = 0;
  volume->Read(0, KiB(128), false, [&](Result<std::uint64_t> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    ++reads;
  });
  cluster.RunFor(sim::Seconds(5));
  ASSERT_EQ(reads, 1);

  hw::Disk* disk = cluster.fabric().disk(volume->id().disk);
  ASSERT_NE(disk, nullptr);
  disk->SpinDown();
  ASSERT_EQ(disk->state(), hw::DiskState::kSpunDown);
  volume->Read(0, KiB(128), false, [&](Result<std::uint64_t> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    ++reads;
  });
  cluster.RunFor(sim::Seconds(30));
  ASSERT_EQ(reads, 2);

  const obs::MetricsSnapshot snapshot = obs::Metrics().Snapshot();
  const auto hist = [&](const std::string& name)
      -> const obs::MetricsSnapshot::HistogramState& {
    auto it = snapshot.histograms.find(name);
    EXPECT_NE(it, snapshot.histograms.end()) << name;
    return it->second;
  };
  const auto& latency = hist("client.read.latency_us");
  EXPECT_EQ(latency.count, 2u);

  const char* kPhases[] = {"queue_wait", "spin_up", "fabric_transfer",
                           "disk_service", "rpc", "retry_backoff"};
  double phase_sum = 0;
  for (const char* phase : kPhases) {
    const auto& h =
        hist("client.read.phase." + std::string(phase) + "_us");
    // One sample per successful read in every phase histogram.
    EXPECT_EQ(h.count, latency.count) << phase;
    phase_sum += h.sum;
  }
  // The partition property: phases sum to e2e (double rounding only).
  EXPECT_NEAR(phase_sum, latency.sum, 1e-3);
  // The cold read's spin-up is visible where it belongs: a full platter
  // start is seconds, not microseconds.
  EXPECT_GT(hist("client.read.phase.spin_up_us").sum, 1e6);
  EXPECT_GT(hist("client.read.phase.disk_service_us").sum, 0.0);
  EXPECT_GT(hist("client.read.phase.rpc_us").sum, 0.0);
}

TEST(DataPlaneBackpressure, OversizedBatchIsRejectedAtomically) {
  sim::Simulator sim;
  Disk disk(&sim, "bp", DiskModel(DiskParams{}, hw::SataInterface()),
            /*start_powered=*/true,
            DiskQueueOptions{.queue_capacity = 4, .max_batch = 2});

  std::vector<IoRequest> batch(
      5, IoRequest{KiB(4), IoDirection::kRead, AccessPattern::kSequential});
  bool rejected = false;
  disk.SubmitBatch(batch, [&](std::span<const IoCompletion> completions) {
    rejected = true;
    ASSERT_EQ(completions.size(), 5u);
    for (const IoCompletion& c : completions) {
      EXPECT_EQ(c.status.code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(c.completed_at, sim.now());
    }
  });
  // Rejection is synchronous and atomic: nothing was queued.
  EXPECT_TRUE(rejected);
  EXPECT_EQ(disk.queue_depth(), 0u);

  // A batch that fits is accepted and completes in full.
  batch.resize(4);
  std::size_t completed = 0;
  disk.SubmitBatch(batch, [&](std::span<const IoCompletion> completions) {
    for (const IoCompletion& c : completions) {
      EXPECT_TRUE(c.status.ok());
      ++completed;
    }
  });
  sim.Run();
  EXPECT_EQ(completed, 4u);
  EXPECT_EQ(disk.ios_completed(), 4u);
}

TEST(DataPlaneBackpressure, SerialOverflowFailsOnlyTheExcessRequest) {
  sim::Simulator sim;
  Disk disk(&sim, "bp", DiskModel(DiskParams{}, hw::SataInterface()),
            /*start_powered=*/true,
            DiskQueueOptions{.queue_capacity = 2, .max_batch = 2});

  // The first submission moves straight into the drain window; the next
  // two fill the ring; the fourth must bounce.
  int ok = 0;
  int exhausted = 0;
  for (int i = 0; i < 4; ++i) {
    disk.SubmitIo({KiB(4), IoDirection::kRead, AccessPattern::kSequential},
                  [&](Status status) {
                    status.ok() ? ++ok : ++exhausted;
                    if (!status.ok()) {
                      EXPECT_EQ(status.code(),
                                StatusCode::kResourceExhausted);
                    }
                  });
  }
  EXPECT_EQ(exhausted, 1);
  sim.Run();
  EXPECT_EQ(ok, 3);
}

TEST(DataPlaneFastForward, SteadyStateMatchesWorkloadSpecMath) {
  const DiskModel model(DiskParams{}, hw::SataInterface());
  const IoRequest req{MiB(1), IoDirection::kWrite, AccessPattern::kSequential};

  // SteadyStateServiceTime is definitionally the switch-free ServiceTime,
  // and the closed-form WorkloadSpec throughput is its reciprocal.
  const sim::Duration steady = model.SteadyStateServiceTime(req, 0);
  EXPECT_EQ(steady, model.ServiceTime(req, IoDirection::kWrite));
  const auto throughput = model.Evaluate(
      hw::WorkloadSpec{MiB(1), 0.0, AccessPattern::kSequential});
  EXPECT_DOUBLE_EQ(throughput.iops, 1e9 / static_cast<double>(steady));

  // A homogeneous batch drains at exactly that cadence: t_i = t_1 + i*s.
  sim::Simulator sim;
  Disk disk(&sim, "ff", DiskModel(DiskParams{}, hw::SataInterface()));
  std::vector<IoRequest> batch(16, req);
  std::vector<sim::Time> completions;
  disk.SubmitBatch(batch, [&](std::span<const IoCompletion> done) {
    for (const IoCompletion& c : done) {
      EXPECT_TRUE(c.status.ok());
      completions.push_back(c.completed_at);
    }
  });
  sim.Run();
  ASSERT_EQ(completions.size(), 16u);
  for (std::size_t i = 2; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i] - completions[i - 1], steady) << i;
  }
}

TEST(DataPlaneFailure, PowerOffMidBatchFailsOnlyNotYetCompletedMembers) {
  sim::Simulator sim;
  Disk disk(&sim, "pf", DiskModel(DiskParams{}, hw::SataInterface()));

  // Six identical 4MiB reads take ~22.7ms each; power off at 50ms, i.e.
  // after the second completion and before the third.
  std::vector<IoRequest> batch(
      6, IoRequest{MiB(4), IoDirection::kRead, AccessPattern::kSequential});
  std::vector<IoCompletion> results;
  disk.SubmitBatch(batch, [&](std::span<const IoCompletion> done) {
    results.assign(done.begin(), done.end());
  });
  const sim::Time power_off_at = sim::Millis(50);
  sim.ScheduleAt(power_off_at, [&] { disk.PowerOff(); });
  sim.Run();

  ASSERT_EQ(results.size(), 6u);
  int succeeded = 0;
  for (const IoCompletion& c : results) {
    if (c.status.ok()) {
      // Anything that had physically completed before the power cut stays
      // completed.
      EXPECT_LE(c.completed_at, power_off_at);
      ++succeeded;
    } else {
      EXPECT_EQ(c.status.code(), StatusCode::kUnavailable);
      EXPECT_GT(c.completed_at, power_off_at);
    }
  }
  EXPECT_EQ(succeeded, 2);
  EXPECT_EQ(disk.ios_completed(), 2u);
}

TEST(DataPlaneFailure, FailMidBatchClassifiesByFailureInstantAndRingReusable) {
  sim::Simulator sim;
  Disk disk(&sim, "fb", DiskModel(DiskParams{}, hw::SataInterface()));

  // Same shape as the power-cut test, but through Fail() — a hardware
  // fault while the window drains — and with the completion callback
  // re-entering the disk (Repair + resubmit), which must neither change
  // how the window was classified nor fire the batch callback twice.
  std::vector<IoRequest> batch(
      6, IoRequest{MiB(4), IoDirection::kRead, AccessPattern::kSequential});
  std::vector<IoCompletion> results;
  int batch_callbacks = 0;
  int resubmit_completions = 0;
  disk.SubmitBatch(batch, [&](std::span<const IoCompletion> done) {
    ++batch_callbacks;
    results.assign(done.begin(), done.end());
    disk.Repair();
    disk.SubmitIo({KiB(4), IoDirection::kWrite, AccessPattern::kRandom},
                  [&](Status status) {
                    EXPECT_TRUE(status.ok()) << status.ToString();
                    ++resubmit_completions;
                  });
  });
  const sim::Time fail_at = sim::Millis(50);
  sim.ScheduleAt(fail_at, [&] { disk.Fail(); });
  sim.Run();

  EXPECT_EQ(batch_callbacks, 1);
  ASSERT_EQ(results.size(), 6u);
  int succeeded = 0;
  for (const IoCompletion& c : results) {
    if (c.status.ok()) {
      EXPECT_LE(c.completed_at, fail_at);
      ++succeeded;
    } else {
      EXPECT_EQ(c.status.code(), StatusCode::kUnavailable);
      EXPECT_GT(c.completed_at, fail_at);
    }
  }
  EXPECT_EQ(succeeded, 2);
  EXPECT_EQ(resubmit_completions, 1);
  EXPECT_EQ(disk.queue_depth(), 0u);  // the ring did not leak
}

TEST(DataPlaneFailure, ResubmitFromFailureCallbackSurvivesTheFailSweep) {
  sim::Simulator sim;
  Disk disk(&sim, "fs", DiskModel(DiskParams{}, hw::SataInterface()));

  // a drains immediately; b and c queue behind it in the ring. Fail()
  // sweeps the ring, and b's failure callback repairs the disk and
  // resubmits — the sweep must still fail c (queued before the repair)
  // but must not swallow the fresh request.
  const IoRequest read{MiB(4), IoDirection::kRead, AccessPattern::kSequential};
  Status a = InternalError("pending");
  Status b = a, c = a, d = a;
  disk.SubmitIo(read, [&](Status status) { a = status; });
  disk.SubmitIo(read, [&](Status status) {
    b = status;
    disk.Repair();
    disk.SubmitIo(read, [&](Status status2) { d = status2; });
  });
  disk.SubmitIo(read, [&](Status status) { c = status; });
  sim.ScheduleAt(sim::Millis(10), [&] { disk.Fail(); });
  sim.Run();

  EXPECT_EQ(b.code(), StatusCode::kUnavailable);
  EXPECT_EQ(c.code(), StatusCode::kUnavailable);
  // a was on the platter past the failure instant: lost mid-io.
  EXPECT_EQ(a.code(), StatusCode::kUnavailable);
  // d was accepted after the repair and completes normally.
  EXPECT_TRUE(d.ok()) << d.ToString();
  EXPECT_EQ(disk.queue_depth(), 0u);
}

TEST(DataPlaneFailure, BatchToSpunDownDiskTriggersOneImplicitSpinUp) {
  sim::Simulator sim;
  Disk disk(&sim, "su", DiskModel(DiskParams{}, hw::SataInterface()));
  disk.SpinDown();
  sim.Run();
  ASSERT_EQ(disk.state(), hw::DiskState::kSpunDown);
  const int cycles_before = disk.spin_cycles();

  std::vector<IoRequest> batch(
      4, IoRequest{KiB(4), IoDirection::kRead, AccessPattern::kSequential});
  std::size_t completed = 0;
  disk.SubmitBatch(batch, [&](std::span<const IoCompletion> done) {
    for (const IoCompletion& c : done) {
      EXPECT_TRUE(c.status.ok());
      ++completed;
    }
  });
  sim.Run();
  EXPECT_EQ(completed, 4u);
  EXPECT_EQ(disk.spin_cycles(), cycles_before + 1);
}

// End to end: client batch -> one RPC -> iSCSI target -> NCQ disk batch ->
// fingerprints round-trip back to the client.
TEST(DataPlaneEndToEnd, BatchedWritesReadBackThroughWholeStack) {
  core::Cluster cluster;
  cluster.Start();
  auto client = cluster.MakeClient("dp-client");
  core::ClientLib::Volume* volume = nullptr;
  client->AllocateAndMount("dp-svc", GiB(2),
                           [&](Result<core::ClientLib::Volume*> result) {
                             ASSERT_TRUE(result.ok()) << result.status();
                             volume = *result;
                           });
  cluster.RunFor(sim::Seconds(10));
  ASSERT_NE(volume, nullptr);

  using IoOp = core::ClientLib::Volume::IoOp;
  using IoOpResult = core::ClientLib::Volume::IoOpResult;
  constexpr int kOps = 8;
  std::vector<IoOp> writes(kOps);
  for (int i = 0; i < kOps; ++i) {
    writes[i] = IoOp{.offset = MiB(1) * i, .length = MiB(1),
                     .is_read = false, .random = false,
                     .tag = 0xD00D + static_cast<std::uint64_t>(i)};
  }
  bool wrote = false;
  volume->SubmitBatch(writes, [&](Status status,
                                  std::span<const IoOpResult> results) {
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
    for (const IoOpResult& r : results) {
      EXPECT_EQ(r.code, StatusCode::kOk);
    }
    wrote = true;
  });
  cluster.RunFor(sim::Seconds(5));
  ASSERT_TRUE(wrote);

  std::vector<IoOp> reads(kOps);
  for (int i = 0; i < kOps; ++i) {
    reads[i] = IoOp{.offset = MiB(1) * i, .length = MiB(1),
                    .is_read = true, .random = false, .tag = 0};
  }
  bool read = false;
  volume->SubmitBatch(reads, [&](Status status,
                                 std::span<const IoOpResult> results) {
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kOps));
    for (int i = 0; i < kOps; ++i) {
      EXPECT_EQ(results[i].code, StatusCode::kOk);
      EXPECT_EQ(results[i].tag, 0xD00D + static_cast<std::uint64_t>(i));
    }
    read = true;
  });
  cluster.RunFor(sim::Seconds(5));
  ASSERT_TRUE(read);

  // Per-op completions landed individually in the latency histograms, and
  // both batch-size observations (client + disk) recorded 8-op batches.
  const obs::MetricsSnapshot snapshot = obs::Metrics().Snapshot();
  auto reads_hist = snapshot.histograms.find("client.read.latency_us");
  ASSERT_NE(reads_hist, snapshot.histograms.end());
  EXPECT_GE(reads_hist->second.count, static_cast<std::uint64_t>(kOps));
  auto batch_hist = snapshot.histograms.find("client.io.batch_size");
  ASSERT_NE(batch_hist, snapshot.histograms.end());
  EXPECT_EQ(batch_hist->second.max, static_cast<double>(kOps));
}

}  // namespace
}  // namespace ustore
