// fabric_inspect — command-line explorer for UStore interconnect designs.
//
// Prints the topology, bill of materials, estimated fabric cost, per-disk
// reachability and exhaustive single-fault coverage for a chosen fabric
// design, so an operator can size a deploy unit before building it.
//
// Usage:
//   fabric_inspect [prototype|leaf|plain] [disks]
//     prototype  Fig. 2 right (default), disks rounded to groups of 4
//     leaf       Fig. 2 left (per-disk switches, 2 hosts)
//     plain      switchless hub tree (1 host)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "baselines/baselines.h"
#include "cost/cost_model.h"
#include "fabric/builders.h"

using namespace ustore;

namespace {

void PrintTree(const fabric::BuiltFabric& f) {
  const fabric::Topology& t = f.topology;
  std::printf("\nTopology (%d nodes):\n", t.size());
  // Print each host port and its active subtree.
  std::function<void(fabric::NodeIndex, int)> recurse =
      [&](fabric::NodeIndex node, int depth) {
        std::printf("%*s%s [%s]\n", depth * 2, "",
                    t.node(node).name.c_str(),
                    std::string(NodeKindName(t.node(node).kind)).c_str());
        for (fabric::NodeIndex child : t.ActiveChildren(node)) {
          recurse(child, depth + 1);
        }
      };
  for (fabric::NodeIndex port : f.host_ports) {
    recurse(port, 0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string design = argc > 1 ? argv[1] : "prototype";
  const int disks = argc > 2 ? std::atoi(argv[2]) : 16;
  if (disks <= 0 || disks > 1024) {
    std::fprintf(stderr, "disks must be in 1..1024\n");
    return 2;
  }

  std::function<fabric::BuiltFabric()> make;
  if (design == "prototype") {
    const int groups = std::max(2, (disks + 3) / 4);
    make = [groups] {
      return fabric::BuildPrototypeFabric({.groups = groups});
    };
  } else if (design == "leaf") {
    make = [disks] {
      return fabric::BuildLeafSwitchedFabric({.disks = disks});
    };
  } else if (design == "plain") {
    make = [disks] {
      return fabric::BuildSingleHostTree({.disks = disks});
    };
  } else {
    std::fprintf(stderr, "unknown design '%s' (prototype|leaf|plain)\n",
                 design.c_str());
    return 2;
  }

  fabric::BuiltFabric f = make();
  Status valid = f.topology.Validate(fabric::kDefaultHubFanIn);
  std::printf("design: %s | disks: %zu | hosts: %zu | valid: %s\n",
              design.c_str(), f.disks.size(), f.hosts.size(),
              valid.ToString().c_str());

  const fabric::FabricBom bom = fabric::CountBom(f);
  std::printf("BOM: %d hubs, %d switches, %d bridges, %d host ports\n",
              bom.hubs, bom.switches, bom.bridges, bom.host_ports);
  std::printf("fabric cost estimate: $%.0f (ICs x2 markup + PCB)\n",
              cost::FabricCost(bom));

  std::printf("\nReachability:\n");
  for (fabric::NodeIndex disk : f.disks) {
    const auto ports = f.topology.ReachableHostPorts(disk);
    std::printf("  %-10s -> %zu host port(s)\n",
                f.topology.node(disk).name.c_str(), ports.size());
    if (f.disks.size() > 16 && disk == f.disks[15]) {
      std::printf("  ... (%zu more)\n", f.disks.size() - 16);
      break;
    }
  }

  const auto coverage = baselines::AnalyzeSingleFaultCoverage(make);
  std::printf(
      "\nSingle-fault coverage: %d/%zu scenarios fully tolerated, worst "
      "case loses %d/%d disks\n",
      coverage.fully_tolerated, coverage.scenarios.size(),
      coverage.worst_case_lost, coverage.disks_total);

  if (f.disks.size() <= 32) PrintTree(f);
  return valid.ok() ? 0 : 1;
}
