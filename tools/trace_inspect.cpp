// trace_inspect: reconstruct and check causal request trees from the
// observability layer (DESIGN.md §11).
//
// With no file argument it drives a small end-to-end scenario (cluster
// bring-up, write + verified read, one batched submission, then a *cold*
// read against a spun-down disk) and inspects the in-process trace buffer.
// Given a file, it parses an obs::DumpTraceJson dump (e.g. from
// `bench_cold_workload --trace-json`).
//
//   $ ./tools/trace_inspect                  # scenario: trees + phase summary
//   $ ./tools/trace_inspect trace.json       # same, from a dump
//   $ ./tools/trace_inspect --chrome         # Chrome-trace-event JSON (Perfetto)
//   $ ./tools/trace_inspect --json           # canonical DumpTraceJson
//   $ ./tools/trace_inspect trace.json --verify
//
// --verify round-trips the forest through the canonical exporter and
// checks the structural invariants the tracing layer promises:
//   * parse -> re-serialize is byte-identical (file mode);
//   * no span's parent id dangles;
//   * every child span lies within its parent's interval;
//   * each tree's phase breakdown (AnalyzeRequestTree) sums exactly to
//     the root span's duration.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cluster.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"

using namespace ustore;

namespace {

// ---------------------------------------------------------------------------
// Minimal parser for the DumpTraceJson format: an array of flat span
// objects with integer ids/timestamps and a string->string attrs object.

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  explicit Parser(const std::string& text)
      : p(text.data()), end(text.data() + text.size()) {}

  void Skip() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  bool Consume(char c) {
    Skip();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    error = std::string("expected '") + c + "'";
    return false;
  }
  bool Peek(char c) {
    Skip();
    return p < end && *p == c;
  }
  bool String(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) ++p;
      *out += *p++;
    }
    return Consume('"');
  }
  bool Int(std::int64_t* out) {
    Skip();
    bool negative = false;
    if (p < end && *p == '-') {
      negative = true;
      ++p;
    }
    if (p >= end || *p < '0' || *p > '9') {
      error = "expected integer";
      return false;
    }
    std::uint64_t value = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(*p++ - '0');
    }
    *out = negative ? -static_cast<std::int64_t>(value)
                    : static_cast<std::int64_t>(value);
    return true;
  }
};

bool ParseSpan(Parser& in, obs::TraceSpan* span) {
  if (!in.Consume('{')) return false;
  while (!in.Peek('}')) {
    std::string key;
    if (!in.String(&key) || !in.Consume(':')) return false;
    if (key == "attrs") {
      if (!in.Consume('{')) return false;
      while (!in.Peek('}')) {
        std::string k, v;
        if (!in.String(&k) || !in.Consume(':') || !in.String(&v)) return false;
        span->attrs.emplace_back(std::move(k), std::move(v));
        if (!in.Peek('}') && !in.Consume(',')) return false;
      }
      if (!in.Consume('}')) return false;
    } else if (key == "component") {
      if (!in.String(&span->component)) return false;
    } else if (key == "name") {
      if (!in.String(&span->name)) return false;
    } else {
      std::int64_t value = 0;
      if (!in.Int(&value)) return false;
      if (key == "id") span->id = static_cast<obs::SpanId>(value);
      else if (key == "trace_id") span->trace_id = static_cast<std::uint64_t>(value);
      else if (key == "parent") span->parent = static_cast<obs::SpanId>(value);
      else if (key == "start_ns") span->start = value;
      else if (key == "end_ns") span->end = value;
      else {
        in.error = "unknown span field: " + key;
        return false;
      }
    }
    if (!in.Peek('}') && !in.Consume(',')) return false;
  }
  return in.Consume('}');
}

bool ParseTraceJson(const std::string& text, std::vector<obs::TraceSpan>* spans,
                    std::string* error) {
  Parser in(text);
  if (!in.Consume('[')) {
    *error = in.error;
    return false;
  }
  while (!in.Peek(']')) {
    obs::TraceSpan span;
    if (!ParseSpan(in, &span)) {
      *error = in.error.empty() ? "bad span object" : in.error;
      return false;
    }
    spans->push_back(std::move(span));
    if (!in.Peek(']') && !in.Consume(',')) {
      *error = in.error;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Tree rendering and the per-phase flame summary.

struct Forest {
  std::vector<obs::TraceSpan> spans;
  std::map<obs::SpanId, std::size_t> by_id;
  std::map<obs::SpanId, std::vector<std::size_t>> children;  // by parent

  explicit Forest(std::vector<obs::TraceSpan> s) : spans(std::move(s)) {
    for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].parent != obs::kInvalidSpan &&
          by_id.count(spans[i].parent) != 0) {
        children[spans[i].parent].push_back(i);
      }
    }
    for (auto& [parent, kids] : children) {
      std::sort(kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
        return spans[a].start != spans[b].start
                   ? spans[a].start < spans[b].start
                   : spans[a].id < spans[b].id;
      });
    }
  }
};

void PrintSubtree(const Forest& forest, std::size_t index, int depth) {
  const obs::TraceSpan& span = forest.spans[index];
  std::printf("  %*s%-14s %-18s [%11.6fs .. %11.6fs] %10.3fms", depth * 2, "",
              span.name.c_str(), span.component.c_str(),
              sim::ToSeconds(span.start), sim::ToSeconds(span.end),
              sim::ToMillis(span.duration()));
  for (const auto& [key, value] : span.attrs) {
    std::printf(" %s=%s", key.c_str(), value.c_str());
  }
  std::printf("\n");
  auto it = forest.children.find(span.id);
  if (it == forest.children.end()) return;
  for (std::size_t child : it->second) PrintSubtree(forest, child, depth + 1);
}

struct PhaseRow {
  const char* name;
  sim::Duration obs::PhaseBreakdown::* field;
};

constexpr PhaseRow kPhaseRows[] = {
    {"queue_wait", &obs::PhaseBreakdown::queue_wait},
    {"spin_up", &obs::PhaseBreakdown::spin_up},
    {"fabric_transfer", &obs::PhaseBreakdown::fabric_transfer},
    {"disk_service", &obs::PhaseBreakdown::disk_service},
    {"rpc", &obs::PhaseBreakdown::rpc},
    {"retry_backoff", &obs::PhaseBreakdown::retry_backoff},
    {"other", &obs::PhaseBreakdown::other},
};

void PrintPhaseSummary(const std::vector<obs::PhaseBreakdown>& breakdowns) {
  obs::PhaseBreakdown total;
  for (const obs::PhaseBreakdown& b : breakdowns) {
    for (const PhaseRow& row : kPhaseRows) total.*row.field += b.*row.field;
    total.e2e += b.e2e;
  }
  std::printf("\n== Critical-path flame summary (%zu request trees) ==\n",
              breakdowns.size());
  std::printf("  %-18s %14s %8s\n", "phase", "total ms", "share");
  for (const PhaseRow& row : kPhaseRows) {
    const sim::Duration value = total.*row.field;
    const double share =
        total.e2e > 0
            ? 100.0 * static_cast<double>(value) / static_cast<double>(total.e2e)
            : 0.0;
    std::printf("  %-18s %14.3f %7.1f%%\n", row.name, sim::ToMillis(value),
                share);
  }
  std::printf("  %-18s %14.3f %7s\n", "e2e", sim::ToMillis(total.e2e), "");
}

// ---------------------------------------------------------------------------
// --verify: the structural invariants of an exported forest.

int Verify(const Forest& forest, const std::string* original_text) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "VERIFY FAIL: %s\n", what.c_str());
    ++failures;
  };

  // Round trip: re-serializing the parsed spans reproduces the canonical
  // form byte for byte (so any tool downstream of the exporter can rely
  // on the exact format).
  const std::string reserialized = obs::DumpTraceJson(forest.spans);
  if (original_text != nullptr) {
    std::string trimmed = *original_text;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == ' ' ||
            trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    if (trimmed != reserialized) {
      fail("parse -> re-serialize is not byte-identical to the input");
    }
  }

  std::set<obs::SpanId> ids;
  for (const obs::TraceSpan& span : forest.spans) ids.insert(span.id);
  for (const obs::TraceSpan& span : forest.spans) {
    if (span.parent != obs::kInvalidSpan && ids.count(span.parent) == 0) {
      fail("span " + std::to_string(span.id) + " has dangling parent " +
           std::to_string(span.parent));
    }
    if (span.end < span.start) {
      fail("span " + std::to_string(span.id) + " ends before it starts");
    }
  }
  // Causality: a child's interval lies within its parent's.
  for (const obs::TraceSpan& span : forest.spans) {
    auto it = forest.by_id.find(span.parent);
    if (it == forest.by_id.end()) continue;
    const obs::TraceSpan& parent = forest.spans[it->second];
    if (span.start < parent.start || span.end > parent.end) {
      fail("span " + std::to_string(span.id) + " [" +
           std::to_string(span.start) + ".." + std::to_string(span.end) +
           "] escapes parent " + std::to_string(parent.id) + " [" +
           std::to_string(parent.start) + ".." + std::to_string(parent.end) +
           "]");
    }
  }
  // Attribution: a serial tree's phases partition the root's duration
  // exactly. Trees with overlapping sibling spans (batched NCQ members
  // share the drain window) legitimately attribute more wall time than
  // the root spans — there the breakdown must only cover the root.
  // Everything is partitioned by trace_id up front so a big forest (a
  // bench_cold_workload dump has tens of thousands of liveness-ping
  // trees) verifies in linear time, not trees x spans.
  std::unordered_map<obs::SpanId, bool> overlap_by_trace;
  for (const auto& [parent, kids] : forest.children) {
    const auto it = forest.by_id.find(parent);
    if (it == forest.by_id.end()) continue;
    bool overlap = false;
    for (std::size_t i = 0; i + 1 < kids.size() && !overlap; ++i) {
      // kids are sorted by start: overlap <=> next starts before prev ends.
      overlap = forest.spans[kids[i + 1]].start < forest.spans[kids[i]].end;
    }
    if (overlap) overlap_by_trace[forest.spans[it->second].trace_id] = true;
  }
  std::unordered_map<obs::SpanId, std::vector<obs::TraceSpan>> by_trace;
  for (const obs::TraceSpan& span : forest.spans) {
    by_trace[span.trace_id].push_back(span);
  }
  for (obs::SpanId root : obs::TraceRoots(forest.spans)) {
    const bool serial = overlap_by_trace.count(root) == 0;
    const auto tree_it =
        by_trace.find(forest.spans[forest.by_id.at(root)].trace_id);
    const obs::PhaseBreakdown breakdown =
        obs::AnalyzeRequestTree(tree_it->second, root);
    if (serial ? breakdown.Sum() != breakdown.e2e
               : breakdown.Sum() < breakdown.e2e) {
      fail("tree " + std::to_string(root) + ": phase sum " +
           std::to_string(breakdown.Sum()) + "ns vs e2e " +
           std::to_string(breakdown.e2e) + "ns (" +
           (serial ? "serial" : "batched") + ")");
    }
  }
  if (failures == 0) {
    std::printf("verify OK: %zu spans, %zu trees\n", forest.spans.size(),
                obs::TraceRoots(forest.spans).size());
  }
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// The built-in scenario: the metrics_inspect request mix plus a cold read.

bool RunScenario() {
  static core::Cluster cluster;  // outlives the trace buffer's time source
  cluster.Start();
  auto client = cluster.MakeClient("inspect-client");
  static std::unique_ptr<core::ClientLib> owned_client = std::move(client);
  core::ClientLib::Volume* volume = nullptr;
  owned_client->AllocateAndMount("inspect-svc", GiB(100),
                                 [&](Result<core::ClientLib::Volume*> result) {
                                   if (result.ok()) volume = *result;
                                 });
  cluster.RunFor(sim::Seconds(10));
  if (volume == nullptr) {
    std::fprintf(stderr, "allocation failed\n");
    return false;
  }

  // Keep only request lifecycles: drop the bring-up spans.
  obs::Tracer().Clear();

  bool ok = false;
  volume->Write(0, MiB(4), /*random=*/false, /*tag=*/0xC0FFEE,
                [&](Status status) {
                  if (!status.ok()) return;
                  volume->Read(0, MiB(4), false,
                               [&](Result<std::uint64_t> tag) {
                                 ok = tag.ok() && *tag == 0xC0FFEE;
                               });
                });
  cluster.RunFor(sim::Seconds(5));
  if (!ok) {
    std::fprintf(stderr, "write+read round trip failed\n");
    return false;
  }

  using IoOp = core::ClientLib::Volume::IoOp;
  using IoOpResult = core::ClientLib::Volume::IoOpResult;
  std::vector<IoOp> ops(4);
  for (int i = 0; i < 4; ++i) {
    ops[i] = IoOp{.offset = MiB(4) * (i + 1), .length = MiB(1),
                  .is_read = false, .random = false,
                  .tag = 0xBA7C0 + static_cast<std::uint64_t>(i)};
  }
  bool batch_ok = false;
  volume->SubmitBatch(ops, [&](Status status,
                               std::span<const IoOpResult> results) {
    batch_ok = status.ok() && results.size() == 4;
  });
  cluster.RunFor(sim::Seconds(5));
  if (!batch_ok) {
    std::fprintf(stderr, "batched submission failed\n");
    return false;
  }

  // The archival case the phase taxonomy exists for: spin the platter down
  // and read cold — the ~7.5 s spin-up dominates the tree.
  hw::Disk* disk = cluster.fabric().disk(volume->id().disk);
  if (disk != nullptr) disk->SpinDown();
  bool cold_ok = false;
  volume->Read(0, KiB(128), true,
               [&](Result<std::uint64_t> tag) { cold_ok = tag.ok(); });
  cluster.RunFor(sim::Seconds(30));
  if (!cold_ok) {
    std::fprintf(stderr, "cold read failed\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool chrome = false, json = false, verify = false;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chrome") == 0) chrome = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--verify") == 0) verify = true;
    else if (argv[i][0] != '-') file = argv[i];
    else {
      std::fprintf(stderr,
                   "usage: trace_inspect [FILE] [--chrome|--json] [--verify]\n");
      return 2;
    }
  }

  std::vector<obs::TraceSpan> spans;
  std::string text;
  const bool from_file = !file.empty();
  if (from_file) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    std::string error;
    if (!ParseTraceJson(text, &spans, &error)) {
      std::fprintf(stderr, "%s: parse error: %s\n", file.c_str(),
                   error.c_str());
      return 1;
    }
  } else {
    if (!RunScenario()) return 1;
    spans = obs::Tracer().CompletedInOrder();
    text = obs::DumpTraceJson(spans);
  }

  if (chrome) {
    std::printf("%s\n", obs::DumpChromeTraceJson(spans).c_str());
    return 0;
  }
  if (json) {
    std::printf("%s\n", obs::DumpTraceJson(spans).c_str());
    return 0;
  }

  Forest forest(std::move(spans));
  if (verify) return Verify(forest, from_file ? &text : nullptr);

  const std::vector<obs::SpanId> roots = obs::TraceRoots(forest.spans);
  std::printf("== Causal request trees (%zu spans, %zu trees) ==\n",
              forest.spans.size(), roots.size());
  // Partition once so per-tree analysis stays linear in the forest size
  // (a bench_cold_workload dump holds tens of thousands of trees).
  std::unordered_map<obs::SpanId, std::vector<obs::TraceSpan>> by_trace;
  for (const obs::TraceSpan& span : forest.spans) {
    by_trace[span.trace_id].push_back(span);
  }
  std::vector<obs::PhaseBreakdown> breakdowns;
  for (obs::SpanId root : roots) {
    auto it = forest.by_id.find(root);
    if (it == forest.by_id.end()) continue;
    std::printf("\ntrace %llu:\n", static_cast<unsigned long long>(root));
    PrintSubtree(forest, it->second, 0);
    breakdowns.push_back(obs::AnalyzeRequestTree(
        by_trace[forest.spans[it->second].trace_id], root));
  }
  PrintPhaseSummary(breakdowns);
  return 0;
}
