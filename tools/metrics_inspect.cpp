// metrics_inspect: run a small end-to-end UStore scenario (cluster bring-up,
// allocate, mount, write, read, one batched submission) and pretty-print
// what the observability layer saw — the full metrics registry, p50/p95/p99
// of every I/O latency histogram, and a request-lifecycle trace timeline
// from the ClientLib down to the disk.
//
//   $ ./tools/metrics_inspect           # table + timeline
//   $ ./tools/metrics_inspect --json    # raw obs::DumpJson() / DumpTraceJson()
//
// --sharded instead runs a small real Cluster on the sharded event engine
// (DESIGN.md §13/§15), twice — central Master, then per-group meta leases —
// and prints the wall-clock occupancy registry each run exported via
// core::ExportShardedPerf: pump.busy_ns / pump.drain_ns / pump.cluster_ns
// and the per-shard shard.<k>.busy_ns / shard.<k>.barrier_wait_ns, so the
// control-plane offload is visible from the terminal.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/cluster_sharded.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace ustore;

namespace {

void PrintRegistry(const obs::MetricsSnapshot& snapshot) {
  std::printf("\n== Counters (sim time %.6fs) ==\n",
              sim::ToSeconds(snapshot.at));
  for (const auto& [name, value] : snapshot.counters) {
    std::printf("  %-40s %12llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  std::printf("\n== Gauges ==\n");
  for (const auto& [name, gauge] : snapshot.gauges) {
    std::printf("  %-40s %12g  (%zu samples", name.c_str(), gauge.value,
                gauge.samples.size());
    if (!gauge.samples.empty()) {
      std::printf(", last at %.6fs", sim::ToSeconds(gauge.samples.back().at));
    }
    std::printf(")\n");
  }

  std::printf("\n== Histograms ==\n");
  std::printf("  %-40s %10s %12s %12s %12s %12s\n", "name", "count", "mean",
              "p50", "p95", "p99");
  // An empty histogram has no mean or quantiles (NaN, see
  // obs::Histogram::Quantile): render "-" rather than a bogus number.
  const auto cell = [](double v) -> std::string {
    if (std::isnan(v)) return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  };
  for (const auto& [name, histogram] : snapshot.histograms) {
    const double mean =
        histogram.count == 0 ? std::nan("") : histogram.sum / histogram.count;
    std::printf("  %-40s %10llu %12s %12s %12s %12s\n", name.c_str(),
                static_cast<unsigned long long>(histogram.count),
                cell(mean).c_str(), cell(histogram.p50).c_str(),
                cell(histogram.p95).c_str(), cell(histogram.p99).c_str());
  }
}

// --sharded: the wall-clock occupancy story. The numbers here are
// measurements (they vary run to run); the deterministic report scalars
// printed alongside them are the ones the determinism fuzz pins down.
int RunShardedInspect(bool json) {
  core::ShardedClusterOptions options;
  options.cluster.fabric.groups = 4;
  options.cluster.fabric.disks_per_leaf = 4;
  options.cluster.fabric.leaf_hubs_per_group = 4;
  options.shards = 4;
  options.threads = 1;
  options.duration = sim::Seconds(2);
  options.burst_period = sim::Millis(5);
  options.sweep_width = 16;
  options.idle_timeout = sim::Millis(100);
  options.directive_every_ops = 2048;
  options.meta_lookups_per_burst = 1;

  for (int pass = 0; pass < 2; ++pass) {
    options.sharded_master = pass == 1;
    obs::MetricsRegistry perf;
    const core::ShardedClusterReport report =
        core::RunShardedCluster(options, /*use_sharded=*/true, &perf);
    std::uint64_t local_decisions = 0;
    for (const core::ShardedClusterGroupReport& group : report.per_group) {
      local_decisions += group.local_decisions;
    }
    if (json) {
      std::string out = options.sharded_master
                            ? "{\"mode\": \"sharded_master\", \"perf\": "
                            : "{\"mode\": \"central_master\", \"perf\": ";
      core::AppendSnapshotJson(&out, perf.Snapshot());
      out += "}";
      std::printf("%s\n", out.c_str());
      continue;
    }
    std::printf("\n==== real Cluster on the sharded engine: %s ====\n",
                options.sharded_master
                    ? "sharded Master (per-group meta leases)"
                    : "central Master");
    std::printf("  pumps %llu, master directives %llu, local decisions "
                "%llu, central meta lookups %llu, lease grants %llu\n",
                static_cast<unsigned long long>(report.pumps),
                static_cast<unsigned long long>(report.master_directives),
                static_cast<unsigned long long>(local_decisions),
                static_cast<unsigned long long>(report.central_meta_lookups),
                static_cast<unsigned long long>(report.lease_grants));
    PrintRegistry(perf.Snapshot());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sharded = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = true;
    } else {
      std::fprintf(stderr, "usage: metrics_inspect [--json] [--sharded]\n");
      return 2;
    }
  }
  if (sharded) return RunShardedInspect(json);

  core::Cluster cluster;
  cluster.Start();

  auto client = cluster.MakeClient("inspect-client");
  core::ClientLib::Volume* volume = nullptr;
  client->AllocateAndMount("inspect-svc", GiB(100),
                           [&](Result<core::ClientLib::Volume*> result) {
                             if (result.ok()) volume = *result;
                           });
  cluster.RunFor(sim::Seconds(10));
  if (volume == nullptr) {
    std::fprintf(stderr, "allocation failed\n");
    return 1;
  }

  // Focus the timeline on one request lifecycle: drop the bring-up spans,
  // then drive a write + verified read through the full stack
  // (ClientLib -> RPC -> iSCSI target on the EndPoint -> Disk).
  obs::Tracer().Clear();
  bool ok = false;
  volume->Write(0, MiB(4), /*random=*/false, /*tag=*/0xC0FFEE,
                [&](Status status) {
                  if (!status.ok()) return;
                  volume->Read(0, MiB(4), false,
                               [&](Result<std::uint64_t> tag) {
                                 ok = tag.ok() && *tag == 0xC0FFEE;
                               });
                });
  cluster.RunFor(sim::Seconds(5));
  if (!ok) {
    std::fprintf(stderr, "write+read round trip failed\n");
    return 1;
  }

  // One batched submission down the data-plane fast path (DESIGN.md §9):
  // four tagged sequential writes plus four reads of the same extents in
  // one command PDU, verified via the fingerprint round trip.
  using IoOp = core::ClientLib::Volume::IoOp;
  using IoOpResult = core::ClientLib::Volume::IoOpResult;
  std::vector<IoOp> ops(8);
  for (int i = 0; i < 4; ++i) {
    ops[i] = IoOp{.offset = MiB(4) * (i + 1), .length = MiB(4),
                  .is_read = false, .random = false,
                  .tag = 0xBA7C0 + static_cast<std::uint64_t>(i)};
    ops[i + 4] = IoOp{.offset = MiB(4) * (i + 1), .length = MiB(4),
                      .is_read = true, .random = false, .tag = 0};
  }
  bool batch_ok = false;
  volume->SubmitBatch(ops, [&](Status status,
                               std::span<const IoOpResult> results) {
    if (!status.ok() || results.size() != 8) return;
    batch_ok = true;
    for (int i = 0; i < 4; ++i) {
      batch_ok = batch_ok && results[i].code == StatusCode::kOk &&
                 results[i + 4].code == StatusCode::kOk &&
                 results[i + 4].tag == 0xBA7C0 + static_cast<std::uint64_t>(i);
    }
  });
  cluster.RunFor(sim::Seconds(5));
  if (!batch_ok) {
    std::fprintf(stderr, "batched round trip failed\n");
    return 1;
  }

  if (json) {
    std::printf("%s\n", obs::DumpJson().c_str());
    std::printf("%s\n", obs::DumpTraceJson(obs::Tracer()).c_str());
    return 0;
  }

  PrintRegistry(obs::Metrics().Snapshot());
  std::printf("\n== Trace timeline (write + read + one 8-op batch) ==\n%s",
              obs::FormatTimeline(obs::Tracer()).c_str());
  return 0;
}
