// metrics_inspect: run a small end-to-end UStore scenario (cluster bring-up,
// allocate, mount, write, read, one batched submission) and pretty-print
// what the observability layer saw — the full metrics registry, p50/p95/p99
// of every I/O latency histogram, and a request-lifecycle trace timeline
// from the ClientLib down to the disk.
//
//   $ ./tools/metrics_inspect           # table + timeline
//   $ ./tools/metrics_inspect --json    # raw obs::DumpJson() / DumpTraceJson()
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace ustore;

namespace {

void PrintRegistry(const obs::MetricsSnapshot& snapshot) {
  std::printf("\n== Counters (sim time %.6fs) ==\n",
              sim::ToSeconds(snapshot.at));
  for (const auto& [name, value] : snapshot.counters) {
    std::printf("  %-40s %12llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  std::printf("\n== Gauges ==\n");
  for (const auto& [name, gauge] : snapshot.gauges) {
    std::printf("  %-40s %12g  (%zu samples", name.c_str(), gauge.value,
                gauge.samples.size());
    if (!gauge.samples.empty()) {
      std::printf(", last at %.6fs", sim::ToSeconds(gauge.samples.back().at));
    }
    std::printf(")\n");
  }

  std::printf("\n== Histograms ==\n");
  std::printf("  %-40s %10s %12s %12s %12s %12s\n", "name", "count", "mean",
              "p50", "p95", "p99");
  // An empty histogram has no mean or quantiles (NaN, see
  // obs::Histogram::Quantile): render "-" rather than a bogus number.
  const auto cell = [](double v) -> std::string {
    if (std::isnan(v)) return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  };
  for (const auto& [name, histogram] : snapshot.histograms) {
    const double mean =
        histogram.count == 0 ? std::nan("") : histogram.sum / histogram.count;
    std::printf("  %-40s %10llu %12s %12s %12s %12s\n", name.c_str(),
                static_cast<unsigned long long>(histogram.count),
                cell(mean).c_str(), cell(histogram.p50).c_str(),
                cell(histogram.p95).c_str(), cell(histogram.p99).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool json =
      argc > 1 && std::strcmp(argv[1], "--json") == 0;

  core::Cluster cluster;
  cluster.Start();

  auto client = cluster.MakeClient("inspect-client");
  core::ClientLib::Volume* volume = nullptr;
  client->AllocateAndMount("inspect-svc", GiB(100),
                           [&](Result<core::ClientLib::Volume*> result) {
                             if (result.ok()) volume = *result;
                           });
  cluster.RunFor(sim::Seconds(10));
  if (volume == nullptr) {
    std::fprintf(stderr, "allocation failed\n");
    return 1;
  }

  // Focus the timeline on one request lifecycle: drop the bring-up spans,
  // then drive a write + verified read through the full stack
  // (ClientLib -> RPC -> iSCSI target on the EndPoint -> Disk).
  obs::Tracer().Clear();
  bool ok = false;
  volume->Write(0, MiB(4), /*random=*/false, /*tag=*/0xC0FFEE,
                [&](Status status) {
                  if (!status.ok()) return;
                  volume->Read(0, MiB(4), false,
                               [&](Result<std::uint64_t> tag) {
                                 ok = tag.ok() && *tag == 0xC0FFEE;
                               });
                });
  cluster.RunFor(sim::Seconds(5));
  if (!ok) {
    std::fprintf(stderr, "write+read round trip failed\n");
    return 1;
  }

  // One batched submission down the data-plane fast path (DESIGN.md §9):
  // four tagged sequential writes plus four reads of the same extents in
  // one command PDU, verified via the fingerprint round trip.
  using IoOp = core::ClientLib::Volume::IoOp;
  using IoOpResult = core::ClientLib::Volume::IoOpResult;
  std::vector<IoOp> ops(8);
  for (int i = 0; i < 4; ++i) {
    ops[i] = IoOp{.offset = MiB(4) * (i + 1), .length = MiB(4),
                  .is_read = false, .random = false,
                  .tag = 0xBA7C0 + static_cast<std::uint64_t>(i)};
    ops[i + 4] = IoOp{.offset = MiB(4) * (i + 1), .length = MiB(4),
                      .is_read = true, .random = false, .tag = 0};
  }
  bool batch_ok = false;
  volume->SubmitBatch(ops, [&](Status status,
                               std::span<const IoOpResult> results) {
    if (!status.ok() || results.size() != 8) return;
    batch_ok = true;
    for (int i = 0; i < 4; ++i) {
      batch_ok = batch_ok && results[i].code == StatusCode::kOk &&
                 results[i + 4].code == StatusCode::kOk &&
                 results[i + 4].tag == 0xBA7C0 + static_cast<std::uint64_t>(i);
    }
  });
  cluster.RunFor(sim::Seconds(5));
  if (!batch_ok) {
    std::fprintf(stderr, "batched round trip failed\n");
    return 1;
  }

  if (json) {
    std::printf("%s\n", obs::DumpJson().c_str());
    std::printf("%s\n", obs::DumpTraceJson(obs::Tracer()).c_str());
    return 0;
  }

  PrintRegistry(obs::Metrics().Snapshot());
  std::printf("\n== Trace timeline (write + read + one 8-op batch) ==\n%s",
              obs::FormatTimeline(obs::Tracer()).c_str());
  return 0;
}
